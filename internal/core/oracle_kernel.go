package core

import (
	"context"
	"fmt"
	"math/bits"
	"sort"

	"branchcorr/internal/obs"
	"branchcorr/internal/runner"
	"branchcorr/internal/trace"
)

// This file is the oracle's columnar hot path. It computes exactly what
// oracle_reference.go computes — differential tests enforce bit-identical
// Candidates and Selections — but over the packed (SoA, dense-ID) trace
// view, with three structural changes:
//
//   - window tag resolution is a flat backward scan over the dense-ID
//     column with epoch-stamped occurrence/segment scratch arrays, not a
//     closure-based walk with linear per-PC searches (oracleEmitter);
//   - pass 1's per-(record × window-entry) map[Ref]*candStats lookups
//     become open-addressed flat candidate tables keyed by packed ref
//     keys (candTable);
//   - the reference's pass 2 (all pairs) and pass 3 (triple extensions)
//     trace streams fold into ONE stream that records each dynamic
//     instance's 2-bit-per-candidate state vector into a per-branch
//     instance matrix; pairs and triples are then scored off-trace with
//     bit-sliced popcount kernels, embarrassingly parallel per branch
//     through the internal/runner worker pool.
//
// Net: 3 trace passes -> 2, no per-candidate allocations, no closures in
// the per-record loop.

// A refKey packs a Ref against the trace's dense branch IDs:
// bits [6..) dense ID, bit 5 scheme, bits [0..5) tag. For one PC the key
// order (scheme, then tag) matches refLess; across PCs keys must be
// compared through the ID -> Addr table (keyRefLess). The emitter
// additionally smuggles the emitted instance's direction in bit 63
// (refKeyTakenBit), so one uint64 buffer carries both the ref identity
// and its state; consumers mask the bit off before table lookups.
const (
	refKeySchemeBit = 1 << 5
	refKeyTagMask   = refKeySchemeBit - 1
	refKeyIDShift   = 6
	refKeyTakenBit  = uint64(1) << 63
)

func refKeyOcc(rid int32, tag uint8) uint64 {
	return uint64(uint32(rid))<<refKeyIDShift | uint64(tag)
}

func refKeyBack(rid int32, tag uint8) uint64 {
	return uint64(uint32(rid))<<refKeyIDShift | refKeySchemeBit | uint64(tag)
}

func decodeRefKey(key uint64, addrs []trace.Addr) Ref {
	s := Occurrence
	if key&refKeySchemeBit != 0 {
		s = BackwardCount
	}
	return Ref{PC: addrs[key>>refKeyIDShift], Scheme: s, Tag: uint8(key & refKeyTagMask)}
}

// keyRefLess orders packed ref keys identically to refLess on the
// decoded Refs: by address, then scheme, then tag. The low 6 bits encode
// (scheme, tag) in exactly refLess's lexicographic order, so only the ID
// needs decoding.
func keyRefLess(a, b uint64, addrs []trace.Addr) bool {
	aa, ab := addrs[a>>refKeyIDShift], addrs[b>>refKeyIDShift]
	if aa != ab {
		return aa < ab
	}
	return a&(refKeySchemeBit|refKeyTagMask) < b&(refKeySchemeBit|refKeyTagMask)
}

// emitScratch is one dense branch ID's per-window bookkeeping, packed
// into a single cache-line-friendly struct so each window entry touches
// one array element instead of three.
type emitScratch struct {
	occGen uint64 // emit-generation stamp: occCnt is valid when it matches
	segGen uint64 // backward-segment stamp for per-segment dedup
	occCnt uint8  // occurrence count within the current emit
}

// oracleEmitter reproduces Window.Visit's emission sequence — the
// nameable tagged instances of the n records preceding a trace position,
// most recent first, occurrence ref before backward ref per entry — as a
// flat buffer of packed ref keys (direction in bit 63). Occurrence
// counts and backward-segment dedup use epoch-stamped scratch indexed by
// dense branch ID, so each window entry costs O(1) instead of a linear
// scan over the PCs seen so far.
//
// The emitter works over raw packed columns, not a *trace.Packed: the
// in-memory path hands it the full packed columns once, while the
// streaming path (oracle_blocks.go) re-points it at a carry+chunk window
// per block and grows the scratch as the intern table grows. Both paths
// run the identical emit loop.
type oracleEmitter struct {
	n int // window length

	ids   []int32  // dense-ID column currently in view
	taken []uint64 // taken bitset, bit i = column record i
	back  []uint64 // backward bitset

	scratch []emitScratch // per dense ID
	gen     uint64        // current emit generation
	seg     uint64        // current backward-segment stamp

	keys []uint64 // emitted packed ref keys | direction bit, Visit order
}

func newOracleEmitter(windowLen int) *oracleEmitter {
	if windowLen <= 0 {
		panic(fmt.Sprintf("core: window length %d must be positive", windowLen))
	}
	return &oracleEmitter{
		n:    windowLen,
		keys: make([]uint64, 0, 2*windowLen),
	}
}

// newPackedEmitter points a fresh emitter at a packed view's full columns.
func newPackedEmitter(pt *trace.Packed, windowLen int) *oracleEmitter {
	e := newOracleEmitter(windowLen)
	e.setColumns(pt.IDs(), pt.TakenWords(), pt.BackwardWords())
	e.growScratch(pt.NumBranches())
	return e
}

// setColumns re-points the emitter at a column view. Epoch stamps stay
// valid across calls: scratch state is per-emit, never per-column.
func (e *oracleEmitter) setColumns(ids []int32, taken, back []uint64) {
	e.ids, e.taken, e.back = ids, taken, back
}

// growScratch extends the per-ID scratch to cover nb dense IDs; existing
// stamps are preserved (they only compare against the current emit
// generation, and zero never matches a positive generation).
func (e *oracleEmitter) growScratch(nb int) {
	if nb <= len(e.scratch) {
		return
	}
	grown := make([]emitScratch, nb)
	copy(grown, e.scratch)
	e.scratch = grown
}

// taken1 reports column record p's direction.
func (e *oracleEmitter) taken1(p int) bool {
	return e.taken[p>>6]>>(uint(p)&63)&1 != 0
}

// back1 reports whether column record p is a backward branch.
func (e *oracleEmitter) back1(p int) bool {
	return e.back[p>>6]>>(uint(p)&63)&1 != 0
}

// emit fills e.keys with the tagged instances visible from trace
// position i. The loop mirrors Window.Visit line for line: emission
// happens before the occurrence count update, backward refs dedup within
// one iteration segment, and both counters saturate exactly like the
// reference's uint8 arithmetic.
//
//bplint:hot
func (e *oracleEmitter) emit(i int) {
	e.keys = e.keys[:0]
	e.gen++
	e.seg++
	backs := uint8(0)
	lo := i - e.n
	if lo < 0 {
		lo = 0
	}
	ids := e.ids
	scratch := e.scratch
	for p := i - 1; p >= lo; p-- {
		rid := ids[p]
		tb := uint64(0)
		tk := e.taken1(p)
		if tk {
			tb = refKeyTakenBit
		}
		sc := &scratch[rid]
		var o uint8
		if sc.occGen == e.gen {
			o = sc.occCnt
		}
		if o <= MaxTag {
			e.keys = append(e.keys, refKeyOcc(rid, o)|tb)
		}
		if sc.occGen != e.gen {
			sc.occGen = e.gen
			sc.occCnt = 1
		} else if o < 255 {
			sc.occCnt = o + 1
		}
		if backs <= MaxTag && sc.segGen != e.seg {
			// Within one iteration segment the same PC can appear more
			// than once with an identical tag; emit only the most recent
			// instance, matching States resolution.
			sc.segGen = e.seg
			e.keys = append(e.keys, refKeyBack(rid, backs)|tb)
		}
		if tk && e.back1(p) && backs < 255 {
			backs++
			e.seg++ // new segment: fresh dedup stamps
		}
	}
}

// candEntry is one candidate's joint distribution in flat form:
// cnt[state*2 + outcome], state/outcome 0 = taken, 1 = not-taken.
type candEntry struct {
	key uint64
	cnt [4]uint32
}

func (e *candEntry) presence() uint32 {
	return e.cnt[0] + e.cnt[1] + e.cnt[2] + e.cnt[3]
}

// candTable is an open-addressed (linear-probe) candidate table: slots
// hold indices into the dense cands slice, so probing touches one flat
// int32 array and stats updates touch one flat entry — no pointers, no
// per-candidate allocation. It reproduces the reference's mid-stream
// watermark prune (see OracleConfig.MaxCandidates) bit for bit.
type candTable struct {
	slots  []int32 // index into cands, -1 = empty; power-of-two sized
	shift  uint    // 64 - log2(len(slots)), for fibonacci hashing
	cands  []candEntry
	prunes int // watermark prunes fired (summed into core.oracle.prune.events)
}

const candTableInitSlots = 16

// probe returns the slot holding key, or the first empty slot of its
// probe chain.
func (t *candTable) probe(key uint64) int {
	slots := t.slots
	cands := t.cands
	mask := uint64(len(slots) - 1)
	h := (key * 0x9E3779B97F4A7C15) >> t.shift
	for {
		s := slots[h]
		if s < 0 || cands[s].key == key {
			return int(h)
		}
		h = (h + 1) & mask
	}
}

// init sizes the slot array up front; the counting loop hand-inlines
// the hit path (probe + increment), so it never checks for a nil table.
func (t *candTable) init() {
	t.slots = make([]int32, candTableInitSlots)
	for i := range t.slots {
		t.slots[i] = -1
	}
	t.shift = 64 - uint(bits.TrailingZeros(candTableInitSlots))
}

// insert is the counting loop's miss path: h is the empty slot probe
// returned for key. The watermark prune fires exactly where the
// reference's does — before an insertion that would exceed
// 2*maxCandidates live candidates.
func (t *candTable) insert(h int, key uint64, cell uint32, maxCandidates int, addrs []trace.Addr) {
	if len(t.cands) >= 2*maxCandidates {
		t.prune(maxCandidates, addrs)
		h = t.probe(key) // table rebuilt: find the new insert slot
	}
	var e candEntry
	e.key = key
	e.cnt[cell] = 1
	t.cands = append(t.cands, e)
	t.slots[h] = int32(len(t.cands) - 1)
	if 4*len(t.cands) >= 3*len(t.slots) {
		t.rebuild(2 * len(t.slots))
	}
}

// prune keeps only the maxKeep candidates with the highest presence
// counts, ties broken by ref identity — the same total order as the
// reference's branchProfile.prune.
func (t *candTable) prune(maxKeep int, addrs []trace.Addr) {
	if len(t.cands) <= maxKeep {
		return
	}
	t.prunes++
	sort.Slice(t.cands, func(i, j int) bool {
		pi, pj := t.cands[i].presence(), t.cands[j].presence()
		if pi != pj {
			return pi > pj
		}
		return keyRefLess(t.cands[i].key, t.cands[j].key, addrs)
	})
	t.cands = t.cands[:maxKeep]
	t.rebuild(len(t.slots))
}

// rebuild re-inserts every candidate into a fresh slot array of the
// given power-of-two size.
func (t *candTable) rebuild(size int) {
	slots := make([]int32, size)
	for i := range slots {
		slots[i] = -1
	}
	t.slots = slots
	t.shift = 64 - uint(bits.TrailingZeros(uint(size)))
	cands := t.cands
	for i := range cands {
		slots[t.probe(cands[i].key)] = int32(i)
	}
}

// kernelProfile is the pass-1 state for one static branch (dense-ID
// indexed; the zero value is ready to use).
type kernelProfile struct {
	total [2]uint32 // outcome totals: [taken, not-taken]
	tab   candTable
}

// profileScore mirrors branchProfile.profileScore over the flat counts.
func (p *kernelProfile) profileScore(e *candEntry) uint32 {
	score := max32(e.cnt[0], e.cnt[1]) + max32(e.cnt[2], e.cnt[3])
	presentT := e.cnt[0] + e.cnt[2]
	presentN := e.cnt[1] + e.cnt[3]
	return score + max32(p.total[0]-presentT, p.total[1]-presentN)
}

// ProfileCandidatesPacked is oracle pass 1 over the columnar trace view.
//
// Deprecated: ProfileCandidatesPacked is Oracle with Stage: StageProfile
// (project .Candidates); new code should call Oracle.
func ProfileCandidatesPacked(pt *trace.Packed, cfg OracleConfig) map[trace.Addr]*Candidates {
	return profilePacked(pt, cfg)
}

// profilePacked is oracle pass 1 over the columnar trace view:
// one stream, flat per-branch candidate tables, no closures and no
// per-candidate allocations. It produces bit-identical results to
// ReferenceProfileCandidates.
func profilePacked(pt *trace.Packed, cfg OracleConfig) map[trace.Addr]*Candidates {
	cfg = cfg.withDefaults()
	defer obs.Or(cfg.Obs).StartSpan("core.oracle.profile").End()
	addrs := pt.Addrs()
	profiles := make([]kernelProfile, pt.NumBranches())
	for id := range profiles {
		profiles[id].tab.init()
	}
	em := newPackedEmitter(pt, cfg.WindowLen)
	profileRange(em, profiles, cfg, addrs, 0, pt.Len())
	return assembleCandidates(profiles, addrs, cfg)
}

// assembleCandidates turns pass 1's per-branch candidate tables into the
// ranked Candidates map — the shared tail of the packed and streaming
// profile entry points.
func assembleCandidates(profiles []kernelProfile, addrs []trace.Addr, cfg OracleConfig) map[trace.Addr]*Candidates {
	reg := obs.Or(cfg.Obs)
	result := make(map[trace.Addr]*Candidates, len(profiles))
	var scratch []scoredRef
	var prunes, occupancy int64
	for id := range profiles {
		p := &profiles[id]
		prunes += int64(p.tab.prunes)
		occupancy += int64(len(p.tab.cands))
		reg.Gauge("core.oracle.candidates.peak").Max(int64(len(p.tab.cands)))
		scratch = scratch[:0]
		for ci := range p.tab.cands {
			e := &p.tab.cands[ci]
			scratch = append(scratch, scoredRef{
				ref:      decodeRefKey(e.key, addrs),
				score:    p.profileScore(e),
				presence: e.presence(),
			})
		}
		result[addrs[id]] = rankCandidates(scratch, int(p.total[0]+p.total[1]), cfg.TopK)
	}
	// Candidate occupancy and prune pressure depend only on (trace,
	// config): the profiling stream is sequential, so the counters are
	// deterministic and comparable across runs.
	reg.Counter("core.oracle.prune.events").Add(prunes)
	reg.Counter("core.oracle.candidates").Add(occupancy)
	return result
}

// profileRange is pass 1's per-record loop over emitter column positions
// [lo, hi): emit the window at every position and count each emitted
// candidate into the branch's flat table, hand-inlining the table hit
// path. The packed path runs it once over the whole column; the
// streaming path runs it once per chunk with lo at the carry boundary.
//
//bplint:hot
func profileRange(em *oracleEmitter, profiles []kernelProfile, cfg OracleConfig, addrs []trace.Addr, lo, hi int) {
	allowOcc := cfg.schemeAllowed(Occurrence)
	allowBack := cfg.schemeAllowed(BackwardCount)
	ids := em.ids
	for i := lo; i < hi; i++ {
		p := &profiles[ids[i]]
		out := uint32(1)
		if em.taken1(i) {
			out = 0
		}
		p.total[out]++
		em.emit(i)
		tab := &p.tab
		for _, key := range em.keys {
			if key&refKeySchemeBit != 0 {
				if !allowBack {
					continue
				}
			} else if !allowOcc {
				continue
			}
			cell := out
			if key&refKeyTakenBit == 0 {
				cell += 2 // state = not-taken
			}
			key &^= refKeyTakenBit
			// Hand-inlined table hit path; misses take the insert call.
			h := tab.probe(key)
			if s := tab.slots[h]; s >= 0 { //bplint:ignore bce-hoist insert may swap the slot array mid-loop; the header reload is the correctness contract
				tab.cands[s].cnt[cell]++ //bplint:ignore bce-hoist insert may grow the candidate array mid-loop; the header reload is the correctness contract
			} else {
				tab.insert(h, key, cell, cfg.MaxCandidates, addrs) //bplint:ignore kernel-purity miss path only; growth is amortized and bounded by the watermark prune
			}
		}
	}
}

// instMatrix stores, for one static branch, each dynamic instance's
// packed candidate-state vector (2 bits per beam candidate: StateTaken,
// StateNotTaken or StateAbsent) and its outcome bitset.
type instMatrix struct {
	vecs []uint64
	outs []uint64 // bit t = instance t resolved taken
	n    int
}

func (m *instMatrix) push(vec uint64, taken bool) {
	if m.n&63 == 0 {
		m.outs = append(m.outs, 0)
	}
	if taken {
		m.outs[m.n>>6] |= 1 << (uint(m.n) & 63)
	}
	m.vecs = append(m.vecs, vec)
	m.n++
}

// beamMatcher resolves emitted ref keys against one branch's beam: a
// sorted key array with parallel beam-slot indices, binary-searched per
// emission. absentVec is the k-candidate all-StateAbsent vector the
// resolution starts from.
type beamMatcher struct {
	keys      []uint64
	slots     []uint8
	k         int
	fullMask  uint32
	absentVec uint64
	m         instMatrix
}

// newBeamMatcher builds a matcher for one branch's beam. idOf resolves a
// PC to its dense ID in the trace's intern table (the packed path passes
// pt.IDOf; the streaming path closes over the complete table produced by
// the profile pass).
func newBeamMatcher(idOf func(trace.Addr) (int32, bool), refs []Ref, total int) *beamMatcher {
	bm := &beamMatcher{k: len(refs), fullMask: uint32(1)<<uint(len(refs)) - 1}
	for slot := 0; slot < len(refs); slot++ {
		bm.absentVec |= uint64(StateAbsent) << (2 * uint(slot))
	}
	type keySlot struct {
		key  uint64
		slot uint8
	}
	pairs := make([]keySlot, 0, len(refs))
	for slot, r := range refs {
		rid, ok := idOf(r.PC)
		if !ok {
			// A ref naming a PC absent from the trace can never be in any
			// window: it stays StateAbsent, exactly like the reference's
			// States resolution.
			continue
		}
		key := refKeyOcc(rid, r.Tag)
		if r.Scheme == BackwardCount {
			key = refKeyBack(rid, r.Tag)
		}
		pairs = append(pairs, keySlot{key, uint8(slot)})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].key < pairs[j].key })
	bm.keys = make([]uint64, len(pairs))
	bm.slots = make([]uint8, len(pairs))
	for i, p := range pairs {
		bm.keys[i] = p.key
		bm.slots[i] = p.slot
	}
	bm.m.vecs = make([]uint64, 0, total)
	bm.m.outs = make([]uint64, 0, (total+63)/64)
	return bm
}

// lookup returns the sorted-key index of key, or -1.
func (bm *beamMatcher) lookup(key uint64) int {
	keys := bm.keys
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(keys) && keys[lo] == key {
		return lo
	}
	return -1
}

// branchSelection is one branch's scored selections, written into a
// pre-assigned slot by the parallel scoring stage.
type branchSelection struct {
	size1, size2, size3 []Ref
}

// SelectRefsPacked is oracle passes 2+3 over the columnar trace view.
//
// Deprecated: SelectRefsPacked is Oracle with Stage: StageSelect and
// Options.Candidates; new code should call Oracle.
func SelectRefsPacked(pt *trace.Packed, cands map[trace.Addr]*Candidates, cfg OracleConfig) *Selections {
	return selectPacked(pt, cands, cfg)
}

// selectPacked is oracle passes 2+3 over the columnar trace view,
// folded into a single collection stream plus an off-trace scoring
// stage. For every dynamic instance of a branch with a non-empty beam it
// records the packed state vector of all beam candidates (2 bits each,
// ≤ 64 bits at the maxTopK beam) into the branch's instance matrix; the
// exact pair/triple joint distributions are then recovered per branch
// with bit-sliced popcount kernels and scored in parallel across the
// internal/runner pool (cfg.ScoreParallel workers, identical output at
// any level). Produces bit-identical Selections to ReferenceSelectRefs.
func selectPacked(pt *trace.Packed, cands map[trace.Addr]*Candidates, cfg OracleConfig) *Selections {
	cfg = cfg.withDefaults()
	defer obs.Or(cfg.Obs).StartSpan("core.oracle.select").End()

	pcs := sortedPCs(cands)
	matchers, matcherOf := buildMatchers(pcs, cands, pt.NumBranches(), pt.IDOf)

	// Collection stream: one pass over the trace, one packed state
	// vector per dynamic instance.
	em := newPackedEmitter(pt, cfg.WindowLen)
	collectRange(em, matchers, 0, pt.Len())

	return scoreSelections(pcs, cands, matcherOf, cfg)
}

// sortedPCs returns the canonical branch order: candidate-map keys,
// sorted. Scoring cells are created in this order, so the Selections are
// deterministic at any parallelism.
func sortedPCs(cands map[trace.Addr]*Candidates) []trace.Addr {
	pcs := make([]trace.Addr, 0, len(cands))
	for pc := range cands {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	return pcs
}

// buildMatchers constructs one beam matcher per branch with a non-empty
// beam, both dense-ID indexed (for the collection loop) and keyed by PC
// (for the scoring stage).
func buildMatchers(pcs []trace.Addr, cands map[trace.Addr]*Candidates, nb int, idOf func(trace.Addr) (int32, bool)) ([]*beamMatcher, map[trace.Addr]*beamMatcher) {
	matchers := make([]*beamMatcher, nb)
	matcherOf := make(map[trace.Addr]*beamMatcher, len(cands))
	for _, pc := range pcs {
		c := cands[pc]
		if len(c.Refs) == 0 {
			continue
		}
		bm := newBeamMatcher(idOf, c.Refs, c.Total)
		matcherOf[pc] = bm
		if rid, ok := idOf(pc); ok {
			matchers[rid] = bm
		}
	}
	return matchers, matcherOf
}

// scoreSelections runs the off-trace scoring stage — per-branch,
// embarrassingly parallel, pre-assigned result slots — and assembles the
// Selections. Shared tail of the packed and streaming select entry
// points.
func scoreSelections(pcs []trace.Addr, cands map[trace.Addr]*Candidates, matcherOf map[trace.Addr]*beamMatcher, cfg OracleConfig) *Selections {
	results := make([]branchSelection, len(pcs))
	cells := make([]runner.Cell, 0, len(pcs))
	for i, pc := range pcs {
		c := cands[pc]
		if len(c.Refs) == 0 {
			continue
		}
		i, bm, refs := i, matcherOf[pc], c.Refs
		cells = append(cells, runner.Cell{
			Exhibit:  "oracle-score",
			Workload: fmt.Sprintf("0x%x", uint32(pc)),
			Run: func(context.Context) error {
				results[i] = scoreBranch(refs, &bm.m)
				return nil
			},
		})
	}
	if err := runner.Run(context.Background(), cells, runner.Options{Parallel: cfg.ScoreParallel}); err != nil {
		// Cells are infallible and the context is never cancelled.
		panic("core: oracle scoring pool failed: " + err.Error())
	}

	sel := &Selections{}
	for k := 1; k <= MaxSelectiveRefs; k++ {
		sel.BySize[k] = make(Assignment, len(cands))
	}
	for i, pc := range pcs {
		r := &results[i]
		if r.size1 == nil {
			continue // empty beam: no assignment, like the reference
		}
		sel.BySize[1][pc] = r.size1
		sel.BySize[2][pc] = r.size2
		sel.BySize[3][pc] = r.size3
	}
	return sel
}

// collectRange is the folded pass-2/3 per-record loop over emitter
// column positions [lo, hi): for every dynamic instance of a branch with
// a beam, resolve the window's emissions against the beam and push the
// packed state vector. The active matcher changes every record, so its
// headers cannot hoist above the record loop.
//
//bplint:hot
func collectRange(em *oracleEmitter, matchers []*beamMatcher, lo, hi int) {
	ids := em.ids
	for i := lo; i < hi; i++ {
		bm := matchers[ids[i]]
		if bm == nil {
			continue
		}
		em.emit(i)
		vec := bm.absentVec
		resolved := uint32(0)
		for _, key := range em.keys {
			ki := bm.lookup(key &^ refKeyTakenBit)
			if ki < 0 {
				continue
			}
			slot := bm.slots[ki] //bplint:ignore bce-hoist bm is selected per record; its slot array cannot hoist above the record loop
			bit := uint32(1) << slot
			if resolved&bit != 0 {
				continue // an earlier (more recent) instance owns the ref
			}
			resolved |= bit
			st := uint64(StateTaken)
			if key&refKeyTakenBit == 0 {
				st = uint64(StateNotTaken)
			}
			vec = vec&^(3<<(2*uint64(slot))) | st<<(2*uint64(slot))
			if resolved == bm.fullMask {
				break
			}
		}
		bm.m.push(vec, em.taken1(i)) //bplint:ignore kernel-purity matrix buffers are preallocated to the branch's instance count in newBeamMatcher; pushes never grow
	}
}

// buildMasks bit-slices a branch's instance matrix: masks[slot][state]
// has bit t set when instance t saw beam candidate slot in that state.
func buildMasks(k int, m *instMatrix) [][3][]uint64 {
	words := (m.n + 63) / 64
	masks := make([][3][]uint64, k)
	for s := range masks {
		for st := 0; st < NumStates; st++ {
			masks[s][st] = make([]uint64, words) //bplint:ignore kernel-purity mask planes are sized once per branch, before the bit-sliced record loops
		}
	}
	for t, vec := range m.vecs {
		w, b := t>>6, uint(t)&63
		for slot := 0; slot < k; slot++ {
			st := vec >> (2 * uint(slot)) & 3
			masks[slot][st][w] |= 1 << b
		}
	}
	return masks
}

// patternCount tallies one joint pattern: the instances where every
// listed mask agrees, split by outcome. Returns the
// statically-filled-PHT correct count max(taken, not-taken).
func patternScore(a, b []uint64, outT []uint64) uint32 {
	var tot, tT uint32
	for w, aw := range a {
		x := aw & b[w]
		tot += uint32(bits.OnesCount64(x))
		tT += uint32(bits.OnesCount64(x & outT[w]))
	}
	return max32(tT, tot-tT)
}

// singleScore is subsetScore for a one-candidate subset.
func singleScore(ma *[3][]uint64, outT []uint64) uint32 {
	score := uint32(0)
	for s := 0; s < NumStates; s++ {
		var tot, tT uint32
		for w, mw := range ma[s] {
			tot += uint32(bits.OnesCount64(mw))
			tT += uint32(bits.OnesCount64(mw & outT[w]))
		}
		score += max32(tT, tot-tT)
	}
	return score
}

// pairScore is subsetScore for a two-candidate subset: nine joint
// patterns recovered by mask intersection.
func pairScore(ma, mb *[3][]uint64, outT []uint64) uint32 {
	score := uint32(0)
	for sa := 0; sa < NumStates; sa++ {
		for sb := 0; sb < NumStates; sb++ {
			score += patternScore(ma[sa], mb[sb], outT)
		}
	}
	return score
}

// tripleScore is subsetScore for the best pair's 9 precomputed pattern
// masks extended by one more candidate (27 joint patterns).
func tripleScore(pm *[9][]uint64, mc *[3][]uint64, outT []uint64) uint32 {
	score := uint32(0)
	for p := 0; p < 9; p++ {
		for sc := 0; sc < NumStates; sc++ {
			score += patternScore(pm[p], mc[sc], outT)
		}
	}
	return score
}

// scoreBranch recovers the reference's pass-2/pass-3 subset search for
// one branch from its instance matrix: exact best pair by exhaustive
// popcount scoring (lexicographic enumeration, strict improvement — the
// same tie-breaks as the reference), then the best greedy triple
// extension of that pair.
//
//bplint:hot
func scoreBranch(refs []Ref, m *instMatrix) branchSelection {
	k := len(refs)
	masks := buildMasks(k, m)
	outT := m.outs

	var bestI, bestJ int
	var bestScore uint32
	if k == 1 {
		bestI, bestJ = 0, -1
		bestScore = singleScore(&masks[0], outT)
	} else {
		first := true
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				if s := pairScore(&masks[i], &masks[j], outT); first || s > bestScore {
					bestI, bestJ, bestScore = i, j, s
					first = false
				}
			}
		}
	}

	var out branchSelection
	out.size1 = []Ref{refs[0]}
	if bestJ < 0 {
		out.size2 = []Ref{refs[0]}
	} else {
		out.size2 = []Ref{refs[bestI], refs[bestJ]}
	}
	out.size3 = out.size2

	if bestJ >= 0 && k > 2 {
		var pm [9][]uint64
		words := len(outT)
		for sa := 0; sa < NumStates; sa++ {
			for sb := 0; sb < NumStates; sb++ {
				w := make([]uint64, words) //bplint:ignore kernel-purity nine pair-pattern masks built once per branch, off the record stream
				a, b := masks[bestI][sa], masks[bestJ][sb]
				for x := range w {
					w[x] = a[x] & b[x]
				}
				pm[sa*3+sb] = w
			}
		}
		triBest := bestScore
		ext := -1
		for e := 0; e < k; e++ {
			if e == bestI || e == bestJ {
				continue
			}
			if s := tripleScore(&pm, &masks[e], outT); s > triBest {
				triBest, ext = s, e
			}
		}
		if ext >= 0 {
			tri := []int{bestI, bestJ, ext}
			sort.Ints(tri)
			out.size3 = []Ref{refs[tri[0]], refs[tri[1]], refs[tri[2]]}
		}
	}
	return out
}
