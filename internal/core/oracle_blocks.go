package core

import (
	"branchcorr/internal/obs"
	"branchcorr/internal/trace"
)

// This file runs the oracle's columnar passes over a streaming
// trace.BlockSource in bounded memory: resident state is one chunk of
// columns plus a WindowLen-record carry, the per-branch candidate
// tables, and the emitter scratch — never the full trace. The per-record
// loops are the very same profileRange/collectRange the packed path
// runs (differential tests pin the streamed results bit-identical to
// the Packed entry points); only the column window they walk is fed
// chunk by chunk.
//
// The stitching invariant: before processing a chunk, the column view
// is [carry | chunk] where carry is the last min(WindowLen, records
// seen) records of the stream so far. Every emit position p in the
// chunk therefore sees exactly the records (p-WindowLen, p) it would
// see in the full column, so window emission — and everything
// downstream of it — is independent of the chunk size.

// columnWindow maintains the [carry | chunk] column view with reused
// buffers.
type columnWindow struct {
	n     int // window length = max carried records
	ids   []int32
	taken []uint64
	back  []uint64
	carry int // carried records at the head of the columns
}

// setBit1 stores v's low bit at bit position p.
func setBit1(ws []uint64, p int, v uint64) {
	mask := uint64(1) << (uint(p) & 63)
	if v != 0 {
		ws[p>>6] |= mask
	} else {
		ws[p>>6] &^= mask
	}
}

// clearFrom zeroes every bit at position >= from.
func clearFrom(ws []uint64, from int) {
	w := from >> 6
	if w >= len(ws) {
		return
	}
	ws[w] &= uint64(1)<<(uint(from)&63) - 1
	for j := w + 1; j < len(ws); j++ {
		ws[j] = 0
	}
}

// extend appends the chunk's records after the carried tail and returns
// the column position of the chunk's first record. Block bitsets are
// block-relative, so each bit is re-based by the carry offset.
func (w *columnWindow) extend(blk trace.Block) int {
	base := w.carry
	total := base + blk.Len()
	w.ids = append(w.ids[:base], blk.IDs...)
	for words := (total + 63) / 64; len(w.taken) < words; {
		w.taken = append(w.taken, 0)
		w.back = append(w.back, 0)
	}
	clearFrom(w.taken, base)
	clearFrom(w.back, base)
	for i := 0; i < blk.Len(); i++ {
		setBit1(w.taken, base+i, blk.Taken1(i))
		setBit1(w.back, base+i, blk.Back1(i))
	}
	return base
}

// retire slides the last min(n, total) records of the current view to
// the head of the columns, forming the next chunk's carry.
func (w *columnWindow) retire(total int) {
	nc := w.n
	if total < nc {
		nc = total
	}
	if shift := total - nc; shift > 0 {
		copy(w.ids[:nc], w.ids[shift:total])
		for i := 0; i < nc; i++ {
			src := shift + i
			setBit1(w.taken, i, w.taken[src>>6]>>(uint(src)&63)&1)
			setBit1(w.back, i, w.back[src>>6]>>(uint(src)&63)&1)
		}
	}
	w.carry = nc
}

// profileBlocks is pass 1's streaming driver: per-branch tables grow
// with the source's intern table, and each chunk runs through
// profileRange at the carry boundary. Returns the final profiles and
// the complete intern table.
func profileBlocks(src trace.BlockSource, cfg OracleConfig) ([]kernelProfile, []trace.Addr, error) {
	reg := obs.Or(cfg.Obs)
	em := newOracleEmitter(cfg.WindowLen)
	win := columnWindow{n: cfg.WindowLen}
	var profiles []kernelProfile
	for {
		blk, ok := src.Next()
		if !ok {
			break
		}
		addrs := src.Addrs()
		for len(profiles) < len(addrs) {
			profiles = append(profiles, kernelProfile{})
			profiles[len(profiles)-1].tab.init()
		}
		em.growScratch(len(addrs))
		base := win.extend(blk)
		em.setColumns(win.ids, win.taken, win.back)
		profileRange(em, profiles, cfg, addrs, base, base+blk.Len())
		win.retire(base + blk.Len())
		reg.Counter("core.oracle.stream.blocks").Inc()
	}
	if err := src.Err(); err != nil {
		return nil, nil, err
	}
	return profiles, src.Addrs(), nil
}

// profilePass runs pass 1 over a stream and returns both the ranked
// candidates and the complete intern table the stream produced.
func profilePass(src trace.BlockSource, cfg OracleConfig) (map[trace.Addr]*Candidates, []trace.Addr, error) {
	defer obs.Or(cfg.Obs).StartSpan("core.oracle.profile").End()
	profiles, addrs, err := profileBlocks(src, cfg)
	if err != nil {
		return nil, nil, err
	}
	return assembleCandidates(profiles, addrs, cfg), addrs, nil
}

// ProfileCandidatesBlocks is oracle pass 1 over a streaming block
// source, in memory bounded by the chunk size rather than the trace
// length.
//
// Deprecated: ProfileCandidatesBlocks is OracleBlocks with Stage:
// StageProfile (project .Candidates); new code should call OracleBlocks.
func ProfileCandidatesBlocks(src trace.BlockSource, cfg OracleConfig) (map[trace.Addr]*Candidates, error) {
	cands, _, err := profilePass(src, cfg.withDefaults())
	return cands, err
}

// internIndex builds an ID-resolution closure over a complete intern
// table, standing in for Packed.IDOf on the streaming path.
func internIndex(addrs []trace.Addr) func(trace.Addr) (int32, bool) {
	idx := make(map[trace.Addr]int32, len(addrs))
	for id, a := range addrs {
		idx[a] = int32(id)
	}
	return func(a trace.Addr) (int32, bool) {
		id, ok := idx[a]
		return id, ok
	}
}

// SelectRefsBlocks is oracle passes 2+3 over a streaming block source.
//
// Deprecated: SelectRefsBlocks is OracleBlocks with Stage: StageSelect,
// Options.Candidates, and Options.Addrs; new code should call
// OracleBlocks.
func SelectRefsBlocks(src trace.BlockSource, addrs []trace.Addr, cands map[trace.Addr]*Candidates, cfg OracleConfig) (*Selections, error) {
	return selectBlocks(src, addrs, cands, cfg)
}

// selectBlocks is oracle passes 2+3 over a streaming block source:
// bit-identical to the packed select pass on the equivalent trace. addrs
// must be the complete intern table of the stream (as returned by the
// profile pass over the same records — a BlockSource re-opened on the
// same input yields the same first-appearance IDs), so beam matchers
// can be built up front.
func selectBlocks(src trace.BlockSource, addrs []trace.Addr, cands map[trace.Addr]*Candidates, cfg OracleConfig) (*Selections, error) {
	cfg = cfg.withDefaults()
	defer obs.Or(cfg.Obs).StartSpan("core.oracle.select").End()

	pcs := sortedPCs(cands)
	matchers, matcherOf := buildMatchers(pcs, cands, len(addrs), internIndex(addrs))

	em := newOracleEmitter(cfg.WindowLen)
	em.growScratch(len(addrs))
	win := columnWindow{n: cfg.WindowLen}
	for {
		blk, ok := src.Next()
		if !ok {
			break
		}
		base := win.extend(blk)
		em.setColumns(win.ids, win.taken, win.back)
		collectRange(em, matchers, base, base+blk.Len())
		win.retire(base + blk.Len())
	}
	if err := src.Err(); err != nil {
		return nil, err
	}
	return scoreSelections(pcs, cands, matcherOf, cfg), nil
}

// BuildSelectiveBlocks is the full oracle pipeline over a streaming
// source: profile, then select, each pass streaming the input in
// bounded memory.
//
// Deprecated: BuildSelectiveBlocks is OracleBlocks with zero
// OracleOptions; new code should call OracleBlocks.
func BuildSelectiveBlocks(open func() (trace.BlockSource, error), cfg OracleConfig) (*Selections, error) {
	return OracleBlocks(open, OracleOptions{OracleConfig: cfg})
}
