// Package core implements the paper's primary contribution: the machinery
// for analyzing why branches are predictable. It provides
//
//   - dynamic-instance tagging of branches in a bounded history window,
//     using both schemes of section 3.2 (occurrence-index tags and
//     backward-branch-count tags);
//   - the selective-history predictors of section 3.4, whose first-level
//     history holds the {taken, not-taken, not-in-path} outcomes of only
//     the 1–3 most important correlated branches;
//   - the oracle that chooses those most-important branches per static
//     branch by profiling the trace;
//   - the per-address predictability classification of section 4.1 and
//     the global/per-address/static categorizations of section 5.
package core

import (
	"fmt"

	"branchcorr/internal/trace"
)

// Scheme is a dynamic-instance tagging scheme from section 3.2. In tight
// loops several instances of the same static branch fit in the history
// window, so a correlated branch must be named by its address plus a tag
// identifying which dynamic instance is meant. The two schemes fail in
// complementary ways (occurrence tags cannot name "the instance from one
// iteration ago" when the branch doesn't execute every iteration;
// backward-count tags cannot name branches from before the current loop),
// so the paper — and this package — uses both, treating the same instance
// under different schemes as distinct correlation candidates.
type Scheme uint8

const (
	// Occurrence tags number instances of a static branch from the
	// current branch backwards: the most recent instance of address A is
	// A/occ0, the next older A/occ1, and so on.
	Occurrence Scheme = iota
	// BackwardCount tags an instance by how many taken backward branches
	// (loop-closing branches) executed between it and the current branch,
	// i.e. roughly "how many iterations ago".
	BackwardCount
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case Occurrence:
		return "occ"
	case BackwardCount:
		return "back"
	default:
		return fmt.Sprintf("scheme(%d)", uint8(s))
	}
}

// MaxTag is the largest instance tag tracked under either scheme; window
// entries whose tag would exceed it are not nameable (and therefore count
// as "not in path" for any ref). 31 covers every instance in the window
// lengths the paper sweeps (n ≤ 32) — essential for tight loops, where
// the only perfectly correlated instance of a loop branch is a full
// period back (e.g. occurrence tag 8 for a trip-count-8 loop).
const MaxTag = 31

// Ref names one dynamic instance of a static branch relative to the
// current branch: the correlated-branch identifier of section 3.2.
type Ref struct {
	PC     trace.Addr
	Scheme Scheme
	Tag    uint8
}

// String renders a ref like "0x4000/occ0".
func (r Ref) String() string {
	return fmt.Sprintf("0x%x/%s%d", uint32(r.PC), r.Scheme, r.Tag)
}

// State is the three-valued outcome of a correlated branch in the history
// window (section 3.4): taken, not-taken, or not in the path of the last
// n branches.
type State uint8

// States, in the order used for pattern indexing.
const (
	StateTaken State = iota
	StateNotTaken
	StateAbsent
)

// NumStates is the radix of selective-history patterns.
const NumStates = 3

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateTaken:
		return "T"
	case StateNotTaken:
		return "N"
	case StateAbsent:
		return "-"
	default:
		return "?"
	}
}

// stateOf converts a direction to a State.
func stateOf(taken bool) State {
	if taken {
		return StateTaken
	}
	return StateNotTaken
}

// Window is a sliding window over the last n dynamic branches, supporting
// tag resolution under both schemes. It is the "path of n branches leading
// up to the current branch" of section 3.1.
type Window struct {
	recs []trace.Record // ring buffer
	head int            // index of the next slot to write (oldest entry)
	size int            // occupied entries, <= len(recs)

	// scratch space for Visit's per-address occurrence counts; windows
	// are small (n ≤ 32 in the paper), so a linear-scanned slice beats a
	// map and avoids a per-call allocation.
	seenPC  []trace.Addr
	seenCnt []uint8
	segPC   []trace.Addr // PCs emitted in the current backward segment
}

// NewWindow returns an empty window over the last n branches. n must be
// positive.
func NewWindow(n int) *Window {
	if n <= 0 {
		panic(fmt.Sprintf("core: window length %d must be positive", n))
	}
	return &Window{
		recs:    make([]trace.Record, n),
		seenPC:  make([]trace.Addr, 0, n),
		seenCnt: make([]uint8, 0, n),
	}
}

// Len returns the window capacity n.
func (w *Window) Len() int { return len(w.recs) }

// Size returns the number of branches currently held (< n only during
// warmup).
func (w *Window) Size() int { return w.size }

// Push records a committed branch, evicting the oldest if full. Callers
// push the current branch *after* resolving refs against the window, so
// the window always holds the n branches preceding the current one.
func (w *Window) Push(r trace.Record) {
	w.recs[w.head] = r
	w.head = (w.head + 1) % len(w.recs)
	if w.size < len(w.recs) {
		w.size++
	}
}

// at returns the record i positions back from the most recent (i=0 is the
// most recently pushed).
func (w *Window) at(i int) trace.Record {
	idx := w.head - 1 - i
	if idx < 0 {
		idx += len(w.recs)
	}
	return w.recs[idx]
}

// Visit walks the window from most recent to oldest, computing both tags
// for every entry, and calls fn for each nameable (tag ≤ MaxTag) tagged
// instance — up to two calls per entry, one per scheme, skipping any whose
// tag overflowed and any BackwardCount ref already emitted for a more
// recent instance (the most recent instance owns the ref, matching States
// resolution). Walking stops early if fn returns false.
//
// Tag conventions: an entry's occurrence tag is the count of more-recent
// window entries with the same address; its backward-count tag is the
// number of taken backward branches more recent than it (the entry itself
// excluded).
func (w *Window) Visit(fn func(ref Ref, taken bool) bool) {
	w.visitN(w.size, fn)
}

// visitN is Visit restricted to the n most recent entries (n <= w.size).
// Both tag schemes depend only on entries more recent than the one being
// tagged, so the first n steps of the full walk ARE the walk a dedicated
// n-capacity window holding the same stream would produce — the prefix
// property that lets one maximal window serve a whole window-length
// sweep (StatesWithin).
func (w *Window) visitN(n int, fn func(ref Ref, taken bool) bool) {
	w.seenPC = w.seenPC[:0]
	w.seenCnt = w.seenCnt[:0]
	w.segPC = w.segPC[:0]
	backs := uint8(0)
	for i := 0; i < n; i++ {
		r := w.at(i)
		var o uint8
		slot := -1
		for j, pc := range w.seenPC {
			if pc == r.PC {
				o = w.seenCnt[j]
				slot = j
				break
			}
		}
		if o <= MaxTag {
			if !fn(Ref{PC: r.PC, Scheme: Occurrence, Tag: o}, r.Taken) {
				return
			}
		}
		if slot >= 0 {
			if o < 255 {
				w.seenCnt[slot] = o + 1
			}
		} else {
			w.seenPC = append(w.seenPC, r.PC)
			w.seenCnt = append(w.seenCnt, 1)
		}
		if backs <= MaxTag {
			// Within one iteration segment (constant backs) the same PC
			// can appear more than once with an identical tag; emit only
			// the most recent instance, matching States resolution.
			dup := false
			for _, pc := range w.segPC {
				if pc == r.PC {
					dup = true
					break
				}
			}
			if !dup {
				w.segPC = append(w.segPC, r.PC)
				if !fn(Ref{PC: r.PC, Scheme: BackwardCount, Tag: backs}, r.Taken) {
					return
				}
			}
		}
		if r.Backward && r.Taken && backs < 255 {
			backs++
			w.segPC = w.segPC[:0]
		}
	}
}

// States resolves a set of refs against the window in a single walk,
// writing each ref's state into states (which must be at least as long as
// refs). Refs not found in the window are StateAbsent. If several window
// entries match the same ref (possible only under the BackwardCount
// scheme, when a branch executes more than once in one iteration), the
// most recent match wins.
func (w *Window) States(refs []Ref, states []State) {
	w.statesN(w.size, refs, states)
}

// StatesWithin resolves refs as States would against a window of length
// n fed the same stream: only the n most recent entries are consulted
// (fewer during warmup). n must be positive; n beyond the window's
// capacity is clamped to it. This is how one maximal-length window
// serves every config of a window-length sweep in a single ring.
func (w *Window) StatesWithin(n int, refs []Ref, states []State) {
	if n <= 0 {
		panic(fmt.Sprintf("core: window view length %d must be positive", n))
	}
	w.statesN(min(n, w.size), refs, states)
}

func (w *Window) statesN(n int, refs []Ref, states []State) {
	for i := range refs {
		states[i] = StateAbsent
	}
	remaining := len(refs)
	w.visitN(n, func(ref Ref, taken bool) bool {
		for i, want := range refs {
			if states[i] == StateAbsent && want == ref {
				states[i] = stateOf(taken)
				remaining--
				if remaining == 0 {
					return false
				}
			}
		}
		return true
	})
}
