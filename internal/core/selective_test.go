package core

import (
	"testing"

	"branchcorr/internal/sim"
	"branchcorr/internal/trace"
)

// lcg is a tiny deterministic pseudo-random bit source for test traces.
type lcg uint32

func (l *lcg) bit() bool {
	*l = *l*1664525 + 1013904223
	return *l&0x40000 != 0
}

// correlatedPair builds a trace where branch X (0x200) copies the outcome
// of the pseudo-random branch Y (0x100), with `gap` uncorrelated noise
// branches between them.
func correlatedPair(n, gap int) *trace.Trace {
	tr := trace.New("pair", 0)
	rng := lcg(42)
	noise := lcg(7)
	for i := 0; i < n; i++ {
		y := rng.bit()
		tr.Append(rec(0x100, y))
		for g := 0; g < gap; g++ {
			tr.Append(rec(trace.Addr(0x300+g*4), noise.bit()))
		}
		tr.Append(rec(0x200, y))
	}
	return tr
}

func accuracyOn(t *testing.T, tr *trace.Trace, p *Selective, pc trace.Addr, skip int) float64 {
	t.Helper()
	res := sim.RunOne(tr, p)
	b := res.Branch(pc)
	if b.Total == 0 {
		t.Fatalf("branch 0x%x never executed", uint32(pc))
	}
	return b.Accuracy()
}

func TestSelectiveExploitsAssignedCorrelation(t *testing.T) {
	tr := correlatedPair(4000, 2)
	assign := Assignment{0x200: {Ref{0x100, Occurrence, 0}}}
	p := NewSelective("sel1", 16, assign)
	if acc := accuracyOn(t, tr, p, 0x200, 0); acc < 0.99 {
		t.Errorf("selective accuracy on X = %.3f, want >= 0.99", acc)
	}
}

func TestSelectiveWrongRefIsUseless(t *testing.T) {
	tr := correlatedPair(4000, 2)
	// Assign a noise branch instead of Y: accuracy should hover near 50%.
	assign := Assignment{0x200: {Ref{0x300, Occurrence, 0}}}
	p := NewSelective("sel-wrong", 16, assign)
	if acc := accuracyOn(t, tr, p, 0x200, 0); acc > 0.65 {
		t.Errorf("selective with useless ref = %.3f, want near 0.5", acc)
	}
}

func TestSelectiveEmptyAssignmentIsPerBranchCounter(t *testing.T) {
	// With no refs, each branch gets one private 2-bit counter: on an
	// always-taken branch that is near-perfect.
	tr := trace.New("bias", 0)
	for i := 0; i < 1000; i++ {
		tr.Append(rec(0x40, true))
	}
	p := NewSelective("sel0", 16, Assignment{})
	res := sim.RunOne(tr, p)
	if res.Correct < 997 {
		t.Errorf("empty-assignment selective correct = %d/1000", res.Correct)
	}
}

func TestSelectiveAndCorrelation(t *testing.T) {
	// Figure 1c: X = Y AND Z. With refs to both Y and Z, X is perfectly
	// determined; with a ref to only one it is not.
	tr := trace.New("and", 0)
	ry, rz := lcg(1), lcg(2)
	for i := 0; i < 8000; i++ {
		y, z := ry.bit(), rz.bit()
		tr.Append(rec(0x100, y))
		tr.Append(rec(0x104, z))
		tr.Append(rec(0x200, y && z))
	}
	two := NewSelective("sel2", 16, Assignment{
		0x200: {Ref{0x100, Occurrence, 0}, Ref{0x104, Occurrence, 0}},
	})
	one := NewSelective("sel1", 16, Assignment{
		0x200: {Ref{0x100, Occurrence, 0}},
	})
	acc2 := accuracyOn(t, tr, two, 0x200, 0)
	acc1 := accuracyOn(t, tr, one, 0x200, 0)
	if acc2 < 0.99 {
		t.Errorf("2-ref selective on AND = %.3f, want >= 0.99", acc2)
	}
	// One ref sees Y only: when Y is taken, X is a coin flip on Z, so
	// accuracy ~ 75%.
	if acc1 > 0.85 {
		t.Errorf("1-ref selective on AND = %.3f, want < 0.85", acc1)
	}
	if acc2 <= acc1 {
		t.Error("2-ref selective should beat 1-ref on AND correlation")
	}
}

func TestSelectiveAbsentState(t *testing.T) {
	// Y appears only every other time before X; when absent, X is always
	// taken, when present X copies Y. The 3-valued state separates these
	// cases, so the selective predictor should be near-perfect.
	tr := trace.New("absent", 0)
	rng := lcg(3)
	noise := lcg(9)
	for i := 0; i < 6000; i++ {
		if i%2 == 0 {
			y := rng.bit()
			tr.Append(rec(0x100, y))
			tr.Append(rec(0x200, y))
		} else {
			// Push enough noise that no stale Y remains in the window.
			for g := 0; g < 17; g++ {
				tr.Append(rec(trace.Addr(0x300+g*4), noise.bit()))
			}
			tr.Append(rec(0x200, true))
		}
	}
	p := NewSelective("sel-abs", 16, Assignment{
		0x200: {Ref{0x100, Occurrence, 0}},
	})
	if acc := accuracyOn(t, tr, p, 0x200, 0); acc < 0.99 {
		t.Errorf("selective with absent state = %.3f, want >= 0.99", acc)
	}
}

func TestSelectiveLoopInstanceTags(t *testing.T) {
	// X's outcome equals Y's outcome from ONE occurrence back (not the
	// most recent): tag occ1 is required; occ0 carries no signal.
	tr := trace.New("lagged", 0)
	rng := lcg(5)
	prev := true
	for i := 0; i < 6000; i++ {
		y := rng.bit()
		tr.Append(rec(0x100, y))
		tr.Append(rec(0x200, prev)) // copies the PREVIOUS Y
		prev = y
	}
	right := NewSelective("occ1", 16, Assignment{0x200: {Ref{0x100, Occurrence, 1}}})
	wrong := NewSelective("occ0", 16, Assignment{0x200: {Ref{0x100, Occurrence, 0}}})
	accR := accuracyOn(t, tr, right, 0x200, 0)
	accW := accuracyOn(t, tr, wrong, 0x200, 0)
	if accR < 0.99 {
		t.Errorf("occ1-tagged selective = %.3f, want >= 0.99", accR)
	}
	if accW > 0.65 {
		t.Errorf("occ0-tagged selective = %.3f, want near 0.5", accW)
	}
}

func TestSelectiveBackwardTags(t *testing.T) {
	// A two-branch loop body: Y then a taken backward branch L each
	// iteration; X at loop exit... simpler: X's outcome equals Y from the
	// previous iteration, where iterations are delimited by taken
	// backward branches. BackwardCount tag 1 names "Y one iteration ago"
	// even though occurrence distance varies (noise inserted some
	// iterations).
	tr := trace.New("back", 0)
	rng := lcg(11)
	noise := lcg(13)
	prevY := true
	for i := 0; i < 6000; i++ {
		y := rng.bit()
		tr.Append(rec(0x100, y))
		if i%3 == 0 { // variable-length iteration bodies
			tr.Append(rec(0x180, noise.bit()))
		}
		tr.Append(rec(0x200, prevY)) // X copies last iteration's Y
		tr.Append(backTaken(0x1F0))  // loop-closing branch
		prevY = y
	}
	p := NewSelective("back1", 16, Assignment{
		// Y from the previous iteration: one taken-backward branch
		// between it and X.
		0x200: {Ref{0x100, BackwardCount, 1}},
	})
	if acc := accuracyOn(t, tr, p, 0x200, 0); acc < 0.99 {
		t.Errorf("backward-tagged selective = %.3f, want >= 0.99", acc)
	}
}

func TestSelectivePanicsOnOversizedAssignment(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for 4-ref assignment")
		}
	}()
	NewSelective("bad", 16, Assignment{
		0x10: make([]Ref, 4),
	})
}

// Update must work standalone (no preceding Predict) and produce the
// same training as the Predict+Update pairing the simulator uses.
func TestSelectiveUpdateWithoutPredict(t *testing.T) {
	tr := correlatedPair(3000, 2)
	assign := Assignment{0x200: {Ref{0x100, Occurrence, 0}}}
	paired := NewSelective("paired", 16, assign)
	solo := NewSelective("solo", 16, assign)
	for _, r := range tr.Records() {
		paired.Predict(r)
		paired.Update(r)
		solo.Update(r) // no Predict call
	}
	// Both predictors must end in identical trained state: compare
	// predictions on a probe sweep.
	probe := correlatedPair(200, 2)
	for _, r := range probe.Records() {
		if paired.Predict(r) != solo.Predict(r) {
			t.Fatalf("divergent state after training without Predict")
		}
		paired.Update(r)
		solo.Update(r)
	}
}

// The memoization must not leak across different branches between
// Predict and Update.
func TestSelectiveMemoizationDifferentPC(t *testing.T) {
	assign := Assignment{
		0x100: {Ref{0x200, Occurrence, 0}},
		0x200: {Ref{0x100, Occurrence, 0}},
	}
	p := NewSelective("memo", 8, assign)
	r1 := rec(0x100, true)
	r2 := rec(0x200, false)
	p.Predict(r1) // memoizes 0x100's pattern
	p.Update(r2)  // different PC: must recompute, not reuse
	p.Update(r1)
	// No assertion beyond "does not panic / trains the right tables":
	// verify tables exist for both branches with the right sizes.
	if len(p.tables[0x100]) != 3 || len(p.tables[0x200]) != 3 {
		t.Fatalf("table sizes: %d, %d", len(p.tables[0x100]), len(p.tables[0x200]))
	}
}

func TestSelectiveName(t *testing.T) {
	p := NewSelective("sel(3,16)", 16, nil)
	if p.Name() != "sel(3,16)" {
		t.Errorf("Name = %q", p.Name())
	}
}
