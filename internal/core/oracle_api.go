package core

import (
	"fmt"

	"branchcorr/internal/obs"
	"branchcorr/internal/trace"
)

// This file is the oracle's consolidated public API, mirroring the
// sim.Simulate consolidation: the nine historical entry points
// (ProfileCandidates/SelectRefs/BuildSelective, their Packed variants,
// and their Blocks twins) collapse into two options-based calls —
// Oracle for in-memory inputs and OracleBlocks for bounded-memory
// streams. The old names remain as byte-identical deprecated wrappers;
// the bplint dep-api rule migrates in-memory callers mechanically.

// Source is any in-memory input the oracle can run over. Both
// *trace.Trace (whose Packed method memoizes the columnar view) and
// *trace.Packed (which returns itself) satisfy it, so callers holding
// either hand it to Oracle directly with no packing boilerplate.
type Source interface {
	Packed() *trace.Packed
}

var (
	_ Source = (*trace.Trace)(nil)
	_ Source = (*trace.Packed)(nil)
)

// OracleStage selects how much of the oracle pipeline runs.
type OracleStage int

const (
	// StageFull runs profile + select and returns ready-to-run
	// selective-history assignments (the default).
	StageFull OracleStage = iota
	// StageProfile runs pass 1 only and returns the ranked candidates in
	// Selections.Candidates, for callers that inspect or edit the beam
	// before selection.
	StageProfile
	// StageSelect runs passes 2+3 from OracleOptions.Candidates, for
	// callers re-scoring a beam produced by an earlier StageProfile run.
	StageSelect
)

// String names the stage for diagnostics.
func (s OracleStage) String() string {
	switch s {
	case StageFull:
		return "full"
	case StageProfile:
		return "profile"
	case StageSelect:
		return "select"
	}
	return fmt.Sprintf("OracleStage(%d)", int(s))
}

// OracleOptions configures one Oracle or OracleBlocks run. The zero
// value runs the full pipeline with OracleConfig defaults.
type OracleOptions struct {
	// OracleConfig carries the algorithmic knobs (WindowLen, TopK,
	// MaxCandidates, Schemes, ScoreParallel, Obs), embedded so callers
	// set them directly on the options literal.
	OracleConfig

	// Stage selects the pipeline slice to run; zero is StageFull.
	Stage OracleStage

	// Candidates is StageSelect's input beam: the per-branch ranked
	// candidates a prior StageProfile run produced with the same config
	// over the same records. Ignored by the other stages.
	Candidates map[trace.Addr]*Candidates

	// Addrs is OracleBlocks' StageSelect intern table: the complete
	// first-appearance address table of the stream (as produced by the
	// profile pass over the same records), needed to build beam matchers
	// before the stream replays. In-memory Oracle ignores it — the
	// packed view carries its own table.
	Addrs []trace.Addr
}

// Oracle runs the correlation oracle over an in-memory source in the
// stage-selected configuration and returns the Selections. StageFull
// and StageSelect fill Selections.BySize; StageProfile fills
// Selections.Candidates. The work runs on the columnar kernels; results
// are bit-identical at every ScoreParallel and identical to the
// streaming path (OracleBlocks) on the same records.
func Oracle(src Source, opts OracleOptions) *Selections {
	pt := src.Packed()
	switch opts.Stage {
	case StageProfile:
		return &Selections{Candidates: profilePacked(pt, opts.OracleConfig)}
	case StageSelect:
		return selectPacked(pt, opts.Candidates, opts.OracleConfig)
	case StageFull:
		reg := obs.Or(opts.Obs)
		reg.Counter("core.oracle.builds").Inc()
		defer reg.StartSpan("core.oracle.build").End()
		return selectPacked(pt, profilePacked(pt, opts.OracleConfig), opts.OracleConfig)
	}
	panic(fmt.Sprintf("core: unknown oracle stage %d", int(opts.Stage)))
}

// OracleBlocks is Oracle over a streaming trace.BlockSource, in memory
// bounded by the chunk size rather than the trace length, bit-identical
// to Oracle on the equivalent in-memory trace. open must yield an
// identical record stream on every call (e.g. re-open the same corpus
// entry or trace file): StageFull opens twice — once per pass — and
// relies on the first pass's intern table matching the re-opened
// stream's dense IDs; the other stages open once.
func OracleBlocks(open func() (trace.BlockSource, error), opts OracleOptions) (*Selections, error) {
	cfg := opts.OracleConfig.withDefaults()
	switch opts.Stage {
	case StageProfile:
		src, err := open()
		if err != nil {
			return nil, err
		}
		cands, _, err := profilePass(src, cfg)
		if err != nil {
			return nil, err
		}
		return &Selections{Candidates: cands}, nil
	case StageSelect:
		src, err := open()
		if err != nil {
			return nil, err
		}
		return selectBlocks(src, opts.Addrs, opts.Candidates, cfg)
	case StageFull:
		reg := obs.Or(cfg.Obs)
		reg.Counter("core.oracle.builds").Inc()
		defer reg.StartSpan("core.oracle.build").End()

		src, err := open()
		if err != nil {
			return nil, err
		}
		cands, addrs, err := profilePass(src, cfg)
		if err != nil {
			return nil, err
		}
		src, err = open()
		if err != nil {
			return nil, err
		}
		return selectBlocks(src, addrs, cands, cfg)
	}
	panic(fmt.Sprintf("core: unknown oracle stage %d", int(opts.Stage)))
}
