// Runtime allocation gate for the oracle's columnar hot path,
// cross-checking the bplint kernel-purity analysis of the
// //bplint:hot-annotated stream functions. The per-record machinery —
// window emission and beam-state collection — must be allocation-free
// once its epoch scratch and key buffer exist; only the amortized miss
// paths (candidate-table growth, watermark prunes) and the once-per-
// branch scoring setup may allocate, and those carry justified
// //bplint:ignore directives in oracle_kernel.go.
package core

import "testing"

// TestOracleEmitterAllocs pins oracleEmitter.emit at zero allocations:
// the key buffer is preallocated to the 2-refs-per-entry worst case, so
// no window position may grow it.
func TestOracleEmitterAllocs(t *testing.T) {
	tr := randomTrace(7, 30_000, 48)
	pt := tr.Packed()
	for _, windowLen := range []int{4, 16, 32} {
		em := newPackedEmitter(pt, windowLen)
		for i := 0; i < tr.Len(); i++ {
			em.emit(i)
		}
		allocs := testing.AllocsPerRun(200, func() { em.emit(tr.Len() / 2) })
		if allocs != 0 {
			t.Errorf("window %d: emit allocates %.1f per call, want 0", windowLen, allocs)
		}
	}
}

// TestCollectStreamAllocs pins the pass-2/3 collection loop's steady
// state: with every instance matrix preallocated to its branch's
// dynamic count (as newBeamMatcher sizes it), replaying the stream over
// reset matrices allocates nothing per record.
func TestCollectStreamAllocs(t *testing.T) {
	tr := randomTrace(7, 30_000, 48)
	pt := tr.Packed()
	cfg := OracleConfig{WindowLen: 8}.withDefaults()
	cands := ProfileCandidatesPacked(pt, cfg)
	matchers := make([]*beamMatcher, pt.NumBranches())
	var all []*beamMatcher
	for pc, c := range cands {
		if len(c.Refs) == 0 {
			continue
		}
		if rid, ok := pt.IDOf(pc); ok {
			bm := newBeamMatcher(pt.IDOf, c.Refs, c.Total)
			matchers[rid] = bm
			all = append(all, bm)
		}
	}
	em := newPackedEmitter(pt, cfg.WindowLen)
	collectRange(em, matchers, 0, pt.Len()) // warm the emitter scratch
	allocs := testing.AllocsPerRun(3, func() {
		for _, bm := range all {
			bm.m.vecs = bm.m.vecs[:0]
			bm.m.outs = bm.m.outs[:0]
			bm.m.n = 0
		}
		collectRange(em, matchers, 0, pt.Len())
	})
	if allocs != 0 {
		t.Errorf("collectStream allocates %.1f per full replay, want 0", allocs)
	}
}
