package core

import (
	"sort"

	"branchcorr/internal/trace"
)

// This file is the oracle's executable specification: the original
// map-and-closure implementation, kept verbatim so the columnar kernels
// in oracle_kernel.go can be differential-tested against it. The
// reference streams the trace three times (profile, pairs, triples) and
// pays a map lookup per (record × window entry); the kernels stream
// twice over the packed view and must produce bit-identical Candidates
// and Selections. Do not "optimize" this file — its value is being the
// slow, obviously-correct transcription of sections 3.2–3.4.

// candStats accumulates, for one (current branch, candidate ref) pair,
// the joint distribution of the candidate's present-state and the current
// branch's outcome: cnt[state][outcome], state in {T, N}, outcome in
// {T, N}. Absent counts are derived from the branch totals.
type candStats struct {
	cnt [2][2]uint32
}

// branchProfile is the pass-1 state for one static branch.
type branchProfile struct {
	total [2]uint32 // outcome totals: [taken, not-taken]
	cands map[Ref]*candStats
}

// profileScore is the number of correct predictions an ideal statically
// filled PHT would make for this branch using only the candidate's
// 3-valued state: for each state, the majority outcome count.
func (p *branchProfile) profileScore(r Ref) uint32 {
	cs := p.cands[r]
	if cs == nil {
		return 0
	}
	score := uint32(0)
	var present [2]uint32 // presence per outcome
	for s := 0; s < 2; s++ {
		score += max32(cs.cnt[s][0], cs.cnt[s][1])
		present[0] += cs.cnt[s][0]
		present[1] += cs.cnt[s][1]
	}
	return score + max32(p.total[0]-present[0], p.total[1]-present[1])
}

// prune keeps only the maxKeep candidates with the highest presence
// counts.
func (p *branchProfile) prune(maxKeep int) {
	if len(p.cands) <= maxKeep {
		return
	}
	type kv struct {
		ref  Ref
		pres uint32
	}
	all := make([]kv, 0, len(p.cands))
	for ref, cs := range p.cands {
		pres := cs.cnt[0][0] + cs.cnt[0][1] + cs.cnt[1][0] + cs.cnt[1][1]
		all = append(all, kv{ref, pres})
	}
	// Total order (presence, then ref identity): equal-presence ties must
	// not be broken by map iteration order, or the surviving candidate set
	// would differ run to run.
	sort.Slice(all, func(i, j int) bool {
		if all[i].pres != all[j].pres {
			return all[i].pres > all[j].pres
		}
		return refLess(all[i].ref, all[j].ref)
	})
	for _, e := range all[maxKeep:] {
		delete(p.cands, e.ref)
	}
}

// ReferenceProfileCandidates is the pre-kernel ProfileCandidates: one
// trace stream, a closure-based window walk, and a per-branch
// map[Ref]*candStats. Differential tests pin the kernel against it.
func ReferenceProfileCandidates(t *trace.Trace, cfg OracleConfig) map[trace.Addr]*Candidates {
	cfg = cfg.withDefaults()
	window := NewWindow(cfg.WindowLen)
	profiles := make(map[trace.Addr]*branchProfile)
	for _, r := range t.Records() {
		p := profiles[r.PC]
		if p == nil {
			p = &branchProfile{cands: make(map[Ref]*candStats)}
			profiles[r.PC] = p
		}
		out := 0
		if !r.Taken {
			out = 1
		}
		p.total[out]++
		window.Visit(func(ref Ref, taken bool) bool {
			if !cfg.schemeAllowed(ref.Scheme) {
				return true
			}
			cs := p.cands[ref]
			if cs == nil {
				if len(p.cands) >= 2*cfg.MaxCandidates {
					p.prune(cfg.MaxCandidates)
				}
				cs = &candStats{}
				p.cands[ref] = cs
			}
			s := 0
			if !taken {
				s = 1
			}
			cs.cnt[s][out]++
			return true
		})
		window.Push(r)
	}

	result := make(map[trace.Addr]*Candidates, len(profiles))
	for pc, p := range profiles {
		all := make([]scoredRef, 0, len(p.cands))
		for ref, cs := range p.cands {
			pres := cs.cnt[0][0] + cs.cnt[0][1] + cs.cnt[1][0] + cs.cnt[1][1]
			// rankCandidates totally orders the slice before use.
			all = append(all, scoredRef{ref, p.profileScore(ref), pres}) //bplint:ignore det-map-order rankCandidates totally orders the slice before any consumer sees it
		}
		result[pc] = rankCandidates(all, int(p.total[0]+p.total[1]), cfg.TopK)
	}
	return result
}

// scoredRef is one profiled candidate ready for beam ranking.
type scoredRef struct {
	ref      Ref
	score    uint32
	presence uint32
}

// rankCandidates orders a branch's profiled candidates into its beam.
// The beam mixes two rankings. The first half is the singly-best
// candidates by profile score. The second half favors presence and small
// tags: for purely interacting correlations (X = Y AND Z, X = Y XOR Z)
// no single ref scores above noise, so score rank is arbitrary — but the
// components of real interactions are close to the branch and frequently
// in its window (section 3.6.2: "the most correlated branches are close
// together"), so nearby ever-present refs are the right tie-break.
//
// Both the reference and kernel implementations feed this ranking; it
// runs once per static branch, off the per-record hot path.
func rankCandidates(all []scoredRef, total, topK int) *Candidates {
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		return refLess(all[i].ref, all[j].ref) // deterministic ties
	})
	c := &Candidates{Total: total}
	k := topK
	if k > len(all) {
		k = len(all)
	}
	scoreHalf := (k + 1) / 2
	taken := make(map[Ref]bool, k)
	for _, e := range all[:scoreHalf] {
		c.Refs = append(c.Refs, e.ref)
		c.Scores = append(c.Scores, e.score)
		taken[e.ref] = true
	}
	rest := make([]scoredRef, 0, len(all)-scoreHalf)
	rest = append(rest, all[scoreHalf:]...)
	sort.Slice(rest, func(i, j int) bool {
		if rest[i].presence != rest[j].presence {
			return rest[i].presence > rest[j].presence
		}
		if rest[i].ref.Tag != rest[j].ref.Tag {
			return rest[i].ref.Tag < rest[j].ref.Tag
		}
		return refLess(rest[i].ref, rest[j].ref)
	})
	for _, e := range rest {
		if len(c.Refs) >= k {
			break
		}
		if taken[e.ref] {
			continue
		}
		c.Refs = append(c.Refs, e.ref)
		c.Scores = append(c.Scores, e.score)
	}
	return c
}

// jointPass streams the trace once and tabulates, for every branch and
// every listed ref subset, the exact joint (state-vector → outcome)
// distribution. subsets[pc] lists index tuples into cands[pc].Refs;
// counts are returned as flattened [subset][pattern][outcome] arrays.
func jointPass(t *trace.Trace, cands map[trace.Addr]*Candidates,
	subsets map[trace.Addr][][]int, windowLen int) map[trace.Addr][][]uint32 {
	counts := make(map[trace.Addr][][]uint32, len(subsets))
	for pc, subs := range subsets {
		arr := make([][]uint32, len(subs))
		for i, sub := range subs {
			arr[i] = make([]uint32, pow3[len(sub)]*2)
		}
		counts[pc] = arr
	}
	window := NewWindow(windowLen)
	var states [maxTopK]State
	for _, r := range t.Records() {
		subs := subsets[r.PC]
		if subs != nil {
			refs := cands[r.PC].Refs
			st := states[:len(refs)]
			window.States(refs, st)
			out := 0
			if !r.Taken {
				out = 1
			}
			arr := counts[r.PC]
			for si, sub := range subs {
				idx := 0
				for j := len(sub) - 1; j >= 0; j-- {
					idx = idx*NumStates + int(st[sub[j]])
				}
				arr[si][idx*2+out]++
			}
		}
		window.Push(r)
	}
	return counts
}

// ReferenceSelectRefs is the pre-kernel SelectRefs: two further trace
// streams (all pairs, then triple extensions of the best pair), each a
// full jointPass. Differential tests pin the kernel against it.
func ReferenceSelectRefs(t *trace.Trace, cands map[trace.Addr]*Candidates, cfg OracleConfig) *Selections {
	cfg = cfg.withDefaults()

	// Pass 2: all pairs among the beam.
	pairSubs := make(map[trace.Addr][][]int, len(cands))
	for pc, c := range cands {
		n := len(c.Refs)
		if n == 0 {
			continue
		}
		var subs [][]int
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				subs = append(subs, []int{i, j})
			}
		}
		if len(subs) == 0 {
			subs = [][]int{{0}} // single candidate: keep a size-1 subset
		}
		pairSubs[pc] = subs
	}
	pairCounts := jointPass(t, cands, pairSubs, cfg.WindowLen)

	type chosen struct {
		pair      []int
		pairScore uint32
	}
	bestPairs := make(map[trace.Addr]chosen, len(cands))
	for pc, subs := range pairSubs {
		arr := pairCounts[pc]
		var best chosen
		for si, sub := range subs {
			if s := subsetScore(arr[si]); best.pair == nil || s > best.pairScore {
				best = chosen{pair: sub, pairScore: s}
			}
		}
		bestPairs[pc] = best
	}

	// Pass 3: extend each branch's best pair with every remaining beam
	// candidate.
	tripleSubs := make(map[trace.Addr][][]int, len(cands))
	for pc, best := range bestPairs {
		if len(best.pair) < 2 {
			continue // single-candidate branch: no triples
		}
		n := len(cands[pc].Refs)
		var subs [][]int
		for i := 0; i < n; i++ {
			if i == best.pair[0] || i == best.pair[1] {
				continue
			}
			tri := []int{best.pair[0], best.pair[1], i}
			sort.Ints(tri)
			subs = append(subs, tri)
		}
		if len(subs) > 0 {
			tripleSubs[pc] = subs
		}
	}
	tripleCounts := jointPass(t, cands, tripleSubs, cfg.WindowLen)

	sel := &Selections{}
	for k := 1; k <= MaxSelectiveRefs; k++ {
		sel.BySize[k] = make(Assignment, len(cands))
	}
	for pc, c := range cands {
		if len(c.Refs) == 0 {
			continue
		}
		// Size 1: pass 1's exact single scores cover all candidates.
		sel.BySize[1][pc] = []Ref{c.Refs[0]}

		// Size 2: the exact best pair (or the lone candidate).
		best := bestPairs[pc]
		pairRefs := make([]Ref, len(best.pair))
		for i, ri := range best.pair {
			pairRefs[i] = c.Refs[ri]
		}
		sel.BySize[2][pc] = pairRefs

		// Size 3: the best greedy extension if it improves on the pair,
		// else the pair itself.
		chosenTriple := pairRefs
		bestScore := best.pairScore
		if subs, ok := tripleSubs[pc]; ok {
			arr := tripleCounts[pc]
			for si, sub := range subs {
				if s := subsetScore(arr[si]); s > bestScore {
					bestScore = s
					tri := make([]Ref, 3)
					for i, ri := range sub {
						tri[i] = c.Refs[ri]
					}
					chosenTriple = tri
				}
			}
		}
		sel.BySize[3][pc] = chosenTriple
	}
	return sel
}

// ReferenceBuildSelective is the pre-kernel BuildSelective: three full
// trace streams end to end.
func ReferenceBuildSelective(t *trace.Trace, cfg OracleConfig) *Selections {
	return ReferenceSelectRefs(t, ReferenceProfileCandidates(t, cfg), cfg)
}
