package core

import (
	"fmt"

	"branchcorr/internal/bp"
	"branchcorr/internal/trace"
)

// MaxSelectiveRefs is the largest selective-history size the paper
// studies (1, 2 or 3 most-important branches).
const MaxSelectiveRefs = 3

// pow3 holds powers of three for pattern indexing.
var pow3 = [MaxSelectiveRefs + 1]int{1, 3, 9, 27}

// Assignment maps each static branch to the correlated-branch instances
// whose outcomes form its selective history. Branches may have fewer refs
// than the nominal history size (e.g. a branch with no useful correlation
// candidates), down to zero refs, in which case the selective predictor
// degenerates to a single private 2-bit counter for that branch.
type Assignment map[trace.Addr][]Ref

// Mode selects how much of a correlated instance's state the selective
// history records, separating the two correlation kinds of section 3.1.
type Mode uint8

const (
	// ModeDirection is the paper's section 3.4 predictor: each ref
	// contributes taken / not-taken / not-in-path (radix 3). It captures
	// direction correlation and in-path correlation together.
	ModeDirection Mode = iota
	// ModePresence discards the correlated branch's outcome and records
	// only whether it was in the path (radix 2). The accuracy a
	// presence-only history retains is a direct measure of in-path
	// correlation (section 3.1): knowing a branch was reached says which
	// way the branches before it went, regardless of its own direction.
	ModePresence
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeDirection:
		return "direction"
	case ModePresence:
		return "presence"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Selective is the hypothetical predictor of section 3.4. It works like a
// global two-level predictor, but the first-level history of a branch
// contains only the outcomes of its assigned correlated branches, each
// recorded as taken, not-taken, or not-in-path. A k-ref history therefore
// has 3^k patterns, each selecting a 2-bit counter in a per-branch
// (interference-free) second-level table; the upper counter bit is the
// prediction and the counter trains on the branch's outcome, identically
// to a global two-level predictor.
type Selective struct {
	name   string
	window *Window
	assign Assignment
	mode   Mode
	tables map[trace.Addr][]bp.Counter2
	// scratch
	states  [MaxSelectiveRefs]State
	lastIdx int
	lastPC  trace.Addr
	valid   bool
}

// NewSelective builds a selective-history predictor over a window of n
// branches with the given per-branch ref assignment, in the paper's
// direction mode. Branches absent from the assignment get an empty ref
// set lazily.
func NewSelective(name string, n int, assign Assignment) *Selective {
	return NewSelectiveMode(name, n, assign, ModeDirection)
}

// NewSelectiveMode builds a selective-history predictor with an explicit
// state mode (see Mode).
func NewSelectiveMode(name string, n int, assign Assignment, mode Mode) *Selective {
	for pc, refs := range assign {
		if len(refs) > MaxSelectiveRefs {
			panic(fmt.Sprintf("core: branch 0x%x assigned %d refs, max %d",
				uint32(pc), len(refs), MaxSelectiveRefs))
		}
	}
	return &Selective{
		name:   name,
		window: NewWindow(n),
		assign: assign,
		mode:   mode,
		tables: make(map[trace.Addr][]bp.Counter2),
	}
}

// Name implements bp.Predictor.
func (s *Selective) Name() string { return s.name }

// patternIndex resolves the branch's refs against the window and returns
// (counter table, pattern index), creating the table on first use.
func (s *Selective) patternIndex(pc trace.Addr) ([]bp.Counter2, int) {
	refs := s.assign[pc]
	table := s.tables[pc]
	if table == nil {
		table = make([]bp.Counter2, pow3[len(refs)])
		s.tables[pc] = table
	}
	if len(refs) == 0 {
		return table, 0
	}
	s.window.States(refs, s.states[:len(refs)])
	idx := 0
	if s.mode == ModePresence {
		for i := len(refs) - 1; i >= 0; i-- {
			idx <<= 1
			if s.states[i] != StateAbsent {
				idx |= 1
			}
		}
	} else {
		for i := len(refs) - 1; i >= 0; i-- {
			idx = idx*NumStates + int(s.states[i])
		}
	}
	return table, idx
}

// Predict implements bp.Predictor. The resolved pattern is memoized for
// the immediately following Update of the same branch, the common
// simulator calling convention.
func (s *Selective) Predict(r trace.Record) bool {
	table, idx := s.patternIndex(r.PC)
	s.lastPC, s.lastIdx, s.valid = r.PC, idx, true
	return table[idx].Taken()
}

// Update implements bp.Predictor: trains the pattern's counter with the
// outcome, then commits the branch into the history window.
func (s *Selective) Update(r trace.Record) {
	var table []bp.Counter2
	var idx int
	if s.valid && s.lastPC == r.PC {
		table, idx = s.tables[r.PC], s.lastIdx
	} else {
		table, idx = s.patternIndex(r.PC)
	}
	s.valid = false
	table[idx] = table[idx].Next(r.Taken)
	s.window.Push(r)
}

var _ bp.Predictor = (*Selective)(nil)
