package core

import (
	"math/rand"
	"testing"

	"branchcorr/internal/trace"
)

// refWindowModel is a brute-force reference implementation of the
// window's tag semantics: it keeps the raw record list and recomputes
// tags from scratch for every query.
type refWindowModel struct {
	recs []trace.Record // oldest first
	n    int
}

func (m *refWindowModel) push(r trace.Record) {
	m.recs = append(m.recs, r)
	if len(m.recs) > m.n {
		m.recs = m.recs[1:]
	}
}

// stateOf resolves a ref by brute force (most recent match wins).
func (m *refWindowModel) stateOf(ref Ref) State {
	occ := map[trace.Addr]int{}
	backs := 0
	for i := len(m.recs) - 1; i >= 0; i-- {
		r := m.recs[i]
		switch ref.Scheme {
		case Occurrence:
			if r.PC == ref.PC && occ[r.PC] == int(ref.Tag) {
				return stateOf(r.Taken)
			}
		case BackwardCount:
			if r.PC == ref.PC && backs == int(ref.Tag) {
				return stateOf(r.Taken)
			}
		}
		occ[r.PC]++
		if r.Backward && r.Taken {
			backs++
		}
	}
	return StateAbsent
}

// TestWindowMatchesBruteForce drives the production window and the
// reference model with identical random streams and compares State
// resolution for random refs at every step.
func TestWindowMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(24)
		w := NewWindow(n)
		ref := &refWindowModel{n: n}
		pcs := []trace.Addr{0x10, 0x14, 0x18, 0x1C, 0x20}
		for step := 0; step < 400; step++ {
			// Query a few random refs before pushing.
			for q := 0; q < 4; q++ {
				r := Ref{
					PC:     pcs[rng.Intn(len(pcs))],
					Scheme: Scheme(rng.Intn(2)),
					Tag:    uint8(rng.Intn(MaxTag + 1)),
				}
				var got [1]State
				w.States([]Ref{r}, got[:])
				if want := ref.stateOf(r); got[0] != want {
					t.Fatalf("trial %d step %d: ref %v: window %v, brute force %v",
						trial, step, r, got[0], want)
				}
			}
			rec := trace.Record{
				PC:       pcs[rng.Intn(len(pcs))],
				Taken:    rng.Intn(2) == 0,
				Backward: rng.Intn(4) == 0,
			}
			w.Push(rec)
			ref.push(rec)
		}
	}
}

// TestVisitConsistentWithStates checks that every ref Visit emits
// resolves (via States) to the taken value Visit reported.
func TestVisitConsistentWithStates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w := NewWindow(16)
	pcs := []trace.Addr{0x10, 0x14, 0x18}
	for step := 0; step < 300; step++ {
		w.Push(trace.Record{
			PC:       pcs[rng.Intn(len(pcs))],
			Taken:    rng.Intn(2) == 0,
			Backward: rng.Intn(3) == 0,
		})
		w.Visit(func(ref Ref, taken bool) bool {
			var got [1]State
			w.States([]Ref{ref}, got[:])
			if got[0] != stateOf(taken) {
				t.Fatalf("step %d: Visit says %v=%v but States says %v",
					step, ref, stateOf(taken), got[0])
			}
			return true
		})
	}
}
