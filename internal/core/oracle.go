package core

import (
	"fmt"

	"branchcorr/internal/obs"
	"branchcorr/internal/trace"
)

// OracleConfig controls the correlation oracle.
type OracleConfig struct {
	// WindowLen is n, the number of prior branches searched for
	// correlated instances (the paper sweeps 8–32; default 16).
	WindowLen int
	// TopK is the beam width: the number of singly-best candidates per
	// branch among which pairs are searched exhaustively and triples by
	// greedy extension of the best pair (default 16, max 32).
	TopK int
	// MaxCandidates caps the per-branch candidate statistics table; when
	// it overflows, the rarest candidates are pruned (default 2048).
	//
	// Pruning is a mid-stream heuristic with a deliberate, deterministic
	// bias: a candidate pruned at the 2×MaxCandidates watermark and later
	// re-observed restarts its joint counts from zero, so its profile
	// score reflects only the suffix of the trace after its last
	// eviction. Tracking tombstones for every evicted candidate would
	// reinstate exactly the memory pressure the cap exists to bound, so
	// the bias is kept, pinned by regression test (the kernel and
	// reference implementations reproduce it bit-identically), and
	// bounded in practice by the presence-ranked eviction order: a
	// candidate must be among the rarest half of 2×MaxCandidates refs to
	// be evicted at all.
	MaxCandidates int
	// Schemes restricts tagging to a subset of schemes; empty means both
	// (the paper's configuration). Used by the tag-scheme ablation.
	Schemes []Scheme
	// ScoreParallel is the number of workers for the per-branch subset
	// scoring stage of SelectRefs (the pair/triple kernels); 0 selects
	// GOMAXPROCS. Scoring writes into pre-assigned per-branch slots, so
	// the Selections are identical at every parallelism level.
	ScoreParallel int
	// Obs receives the oracle's counters (candidate occupancy, prune
	// events) and pass spans; nil selects obs.Default(). Counter values
	// depend only on the trace and config, never on ScoreParallel.
	Obs *obs.Registry
}

// maxTopK bounds the beam width (and the States scratch arrays).
const maxTopK = 32

func (c OracleConfig) withDefaults() OracleConfig {
	if c.WindowLen == 0 {
		c.WindowLen = 16
	}
	if c.TopK == 0 {
		c.TopK = 16
	}
	if c.TopK > maxTopK {
		panic(fmt.Sprintf("core: TopK %d exceeds limit %d", c.TopK, maxTopK))
	}
	if c.MaxCandidates == 0 {
		c.MaxCandidates = 2048
	}
	return c
}

func (c OracleConfig) schemeAllowed(s Scheme) bool {
	if len(c.Schemes) == 0 {
		return true
	}
	for _, want := range c.Schemes {
		if want == s {
			return true
		}
	}
	return false
}

func max32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}

// Candidates is the per-branch outcome of oracle pass 1: the TopK
// singly-best correlated refs, most predictive first.
type Candidates struct {
	Refs   []Ref
	Scores []uint32 // profile scores aligned with Refs
	Total  int      // dynamic executions of the branch
}

func refLess(a, b Ref) bool {
	if a.PC != b.PC {
		return a.PC < b.PC
	}
	if a.Scheme != b.Scheme {
		return a.Scheme < b.Scheme
	}
	return a.Tag < b.Tag
}

// Selections holds the oracle's chosen ref sets per history size.
type Selections struct {
	// BySize[k] assigns each branch its best k-ref selective history
	// (k in [1, MaxSelectiveRefs]); branches with fewer than k candidates
	// get all they have. Filled by StageFull and StageSelect runs.
	BySize [MaxSelectiveRefs + 1]Assignment

	// Candidates is the per-branch ranked beam from pass 1. Only
	// StageProfile runs fill it; the other stages leave it nil (a
	// StageSelect caller already holds the beam it passed in).
	Candidates map[trace.Addr]*Candidates
}

// subsetScore is the statically-filled-PHT correct count for one subset's
// joint distribution.
func subsetScore(flat []uint32) uint32 {
	score := uint32(0)
	for p := 0; p < len(flat)/2; p++ {
		score += max32(flat[p*2], flat[p*2+1])
	}
	return score
}

// ProfileCandidates performs oracle pass 1: it streams the trace once,
// counting for every static branch the joint distribution of each
// candidate tagged instance's state with the branch's outcome, and
// returns each branch's TopK candidates ranked by profile score.
//
// Deprecated: ProfileCandidates is Oracle with Stage: StageProfile
// (project .Candidates); new code should call Oracle.
func ProfileCandidates(t *trace.Trace, cfg OracleConfig) map[trace.Addr]*Candidates {
	return profilePacked(trace.Pack(t), cfg)
}

// SelectRefs performs oracle passes 2 and 3: with each branch's TopK
// candidates fixed, it first tabulates the exact joint distribution of
// every candidate *pair* with the branch outcome (so purely interacting
// correlations — e.g. branch X = Y AND Z of figure 1c, where neither Y
// nor Z alone predicts X — are found as long as both components are in
// the beam), picks the best pair, then greedily extends the best pair
// with each remaining candidate to choose the best triple. This
// approximates the paper's oracle choice of "the 1, 2 or 3 most important
// branches" (section 3.4); the approximation is exact for sizes 1 and 2
// within the beam.
//
// The columnar kernel folds the reference implementation's two
// tabulation streams into a single trace pass that records one packed
// state vector per dynamic instance, then scores all pairs and triples
// from the per-branch instance matrices.
//
// Deprecated: SelectRefs is Oracle with Stage: StageSelect and
// Options.Candidates; new code should call Oracle.
func SelectRefs(t *trace.Trace, cands map[trace.Addr]*Candidates, cfg OracleConfig) *Selections {
	return selectPacked(trace.Pack(t), cands, cfg)
}

// BuildSelective is the full oracle pipeline: profile candidates, select
// ref subsets, and return ready-to-run selective-history assignments for
// sizes 1..MaxSelectiveRefs.
//
// Deprecated: BuildSelective is Oracle with zero OracleOptions; new
// code should call Oracle.
func BuildSelective(t *trace.Trace, cfg OracleConfig) *Selections {
	return Oracle(t, OracleOptions{OracleConfig: cfg})
}

// BuildSelectivePacked is BuildSelective over a pre-built columnar trace
// view, packing the trace exactly zero times.
//
// Deprecated: BuildSelectivePacked is Oracle with zero OracleOptions (a
// *trace.Packed is a Source); new code should call Oracle.
func BuildSelectivePacked(pt *trace.Packed, cfg OracleConfig) *Selections {
	return Oracle(pt, OracleOptions{OracleConfig: cfg})
}
