package core

import (
	"fmt"
	"sort"

	"branchcorr/internal/trace"
)

// OracleConfig controls the correlation oracle.
type OracleConfig struct {
	// WindowLen is n, the number of prior branches searched for
	// correlated instances (the paper sweeps 8–32; default 16).
	WindowLen int
	// TopK is the beam width: the number of singly-best candidates per
	// branch among which pairs are searched exhaustively and triples by
	// greedy extension of the best pair (default 16, max 32).
	TopK int
	// MaxCandidates caps the per-branch candidate statistics table; when
	// it overflows, the rarest candidates are pruned (default 2048).
	MaxCandidates int
	// Schemes restricts tagging to a subset of schemes; empty means both
	// (the paper's configuration). Used by the tag-scheme ablation.
	Schemes []Scheme
}

// maxTopK bounds the beam width (and the States scratch arrays).
const maxTopK = 32

func (c OracleConfig) withDefaults() OracleConfig {
	if c.WindowLen == 0 {
		c.WindowLen = 16
	}
	if c.TopK == 0 {
		c.TopK = 16
	}
	if c.TopK > maxTopK {
		panic(fmt.Sprintf("core: TopK %d exceeds limit %d", c.TopK, maxTopK))
	}
	if c.MaxCandidates == 0 {
		c.MaxCandidates = 2048
	}
	return c
}

func (c OracleConfig) schemeAllowed(s Scheme) bool {
	if len(c.Schemes) == 0 {
		return true
	}
	for _, want := range c.Schemes {
		if want == s {
			return true
		}
	}
	return false
}

// candStats accumulates, for one (current branch, candidate ref) pair,
// the joint distribution of the candidate's present-state and the current
// branch's outcome: cnt[state][outcome], state in {T, N}, outcome in
// {T, N}. Absent counts are derived from the branch totals.
type candStats struct {
	cnt [2][2]uint32
}

// branchProfile is the pass-1 state for one static branch.
type branchProfile struct {
	total [2]uint32 // outcome totals: [taken, not-taken]
	cands map[Ref]*candStats
}

// profileScore is the number of correct predictions an ideal statically
// filled PHT would make for this branch using only the candidate's
// 3-valued state: for each state, the majority outcome count.
func (p *branchProfile) profileScore(r Ref) uint32 {
	cs := p.cands[r]
	if cs == nil {
		return 0
	}
	score := uint32(0)
	var present [2]uint32 // presence per outcome
	for s := 0; s < 2; s++ {
		score += max32(cs.cnt[s][0], cs.cnt[s][1])
		present[0] += cs.cnt[s][0]
		present[1] += cs.cnt[s][1]
	}
	return score + max32(p.total[0]-present[0], p.total[1]-present[1])
}

func max32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}

// prune keeps only the maxKeep candidates with the highest presence
// counts.
func (p *branchProfile) prune(maxKeep int) {
	if len(p.cands) <= maxKeep {
		return
	}
	type kv struct {
		ref  Ref
		pres uint32
	}
	all := make([]kv, 0, len(p.cands))
	for ref, cs := range p.cands {
		pres := cs.cnt[0][0] + cs.cnt[0][1] + cs.cnt[1][0] + cs.cnt[1][1]
		all = append(all, kv{ref, pres})
	}
	// Total order (presence, then ref identity): equal-presence ties must
	// not be broken by map iteration order, or the surviving candidate set
	// would differ run to run.
	sort.Slice(all, func(i, j int) bool {
		if all[i].pres != all[j].pres {
			return all[i].pres > all[j].pres
		}
		return refLess(all[i].ref, all[j].ref)
	})
	for _, e := range all[maxKeep:] {
		delete(p.cands, e.ref)
	}
}

// Candidates is the per-branch outcome of oracle pass 1: the TopK
// singly-best correlated refs, most predictive first.
type Candidates struct {
	Refs   []Ref
	Scores []uint32 // profile scores aligned with Refs
	Total  int      // dynamic executions of the branch
}

// ProfileCandidates performs oracle pass 1: it streams the trace once,
// counting for every static branch the joint distribution of each
// candidate tagged instance's state with the branch's outcome, and
// returns each branch's TopK candidates ranked by profile score.
func ProfileCandidates(t *trace.Trace, cfg OracleConfig) map[trace.Addr]*Candidates {
	cfg = cfg.withDefaults()
	window := NewWindow(cfg.WindowLen)
	profiles := make(map[trace.Addr]*branchProfile)
	for _, r := range t.Records() {
		p := profiles[r.PC]
		if p == nil {
			p = &branchProfile{cands: make(map[Ref]*candStats)}
			profiles[r.PC] = p
		}
		out := 0
		if !r.Taken {
			out = 1
		}
		p.total[out]++
		window.Visit(func(ref Ref, taken bool) bool {
			if !cfg.schemeAllowed(ref.Scheme) {
				return true
			}
			cs := p.cands[ref]
			if cs == nil {
				if len(p.cands) >= 2*cfg.MaxCandidates {
					p.prune(cfg.MaxCandidates)
				}
				cs = &candStats{}
				p.cands[ref] = cs
			}
			s := 0
			if !taken {
				s = 1
			}
			cs.cnt[s][out]++
			return true
		})
		window.Push(r)
	}

	result := make(map[trace.Addr]*Candidates, len(profiles))
	for pc, p := range profiles {
		type scored struct {
			ref      Ref
			score    uint32
			presence uint32
		}
		all := make([]scored, 0, len(p.cands))
		for ref, cs := range p.cands {
			pres := cs.cnt[0][0] + cs.cnt[0][1] + cs.cnt[1][0] + cs.cnt[1][1]
			all = append(all, scored{ref, p.profileScore(ref), pres})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].score != all[j].score {
				return all[i].score > all[j].score
			}
			return refLess(all[i].ref, all[j].ref) // deterministic ties
		})
		c := &Candidates{Total: int(p.total[0] + p.total[1])}
		// The beam mixes two rankings. The first half is the singly-best
		// candidates by profile score. The second half favors presence
		// and small tags: for purely interacting correlations (X = Y
		// AND Z, X = Y XOR Z) no single ref scores above noise, so score
		// rank is arbitrary — but the components of real interactions
		// are close to the branch and frequently in its window (section
		// 3.6.2: "the most correlated branches are close together"), so
		// nearby ever-present refs are the right tie-break.
		k := cfg.TopK
		if k > len(all) {
			k = len(all)
		}
		scoreHalf := (k + 1) / 2
		taken := make(map[Ref]bool, k)
		for _, e := range all[:scoreHalf] {
			c.Refs = append(c.Refs, e.ref)
			c.Scores = append(c.Scores, e.score)
			taken[e.ref] = true
		}
		rest := make([]scored, 0, len(all)-scoreHalf)
		rest = append(rest, all[scoreHalf:]...)
		sort.Slice(rest, func(i, j int) bool {
			if rest[i].presence != rest[j].presence {
				return rest[i].presence > rest[j].presence
			}
			if rest[i].ref.Tag != rest[j].ref.Tag {
				return rest[i].ref.Tag < rest[j].ref.Tag
			}
			return refLess(rest[i].ref, rest[j].ref)
		})
		for _, e := range rest {
			if len(c.Refs) >= k {
				break
			}
			if taken[e.ref] {
				continue
			}
			c.Refs = append(c.Refs, e.ref)
			c.Scores = append(c.Scores, e.score)
		}
		result[pc] = c
	}
	return result
}

func refLess(a, b Ref) bool {
	if a.PC != b.PC {
		return a.PC < b.PC
	}
	if a.Scheme != b.Scheme {
		return a.Scheme < b.Scheme
	}
	return a.Tag < b.Tag
}

// Selections holds the oracle's chosen ref sets per history size.
type Selections struct {
	// BySize[k] assigns each branch its best k-ref selective history
	// (k in [1, MaxSelectiveRefs]); branches with fewer than k candidates
	// get all they have.
	BySize [MaxSelectiveRefs + 1]Assignment
}

// jointPass streams the trace once and tabulates, for every branch and
// every listed ref subset, the exact joint (state-vector → outcome)
// distribution. subsets[pc] lists index tuples into cands[pc].Refs;
// counts are returned as flattened [subset][pattern][outcome] arrays.
func jointPass(t *trace.Trace, cands map[trace.Addr]*Candidates,
	subsets map[trace.Addr][][]int, windowLen int) map[trace.Addr][][]uint32 {
	counts := make(map[trace.Addr][][]uint32, len(subsets))
	for pc, subs := range subsets {
		arr := make([][]uint32, len(subs))
		for i, sub := range subs {
			arr[i] = make([]uint32, pow3[len(sub)]*2)
		}
		counts[pc] = arr
	}
	window := NewWindow(windowLen)
	var states [maxTopK]State
	for _, r := range t.Records() {
		subs := subsets[r.PC]
		if subs != nil {
			refs := cands[r.PC].Refs
			st := states[:len(refs)]
			window.States(refs, st)
			out := 0
			if !r.Taken {
				out = 1
			}
			arr := counts[r.PC]
			for si, sub := range subs {
				idx := 0
				for j := len(sub) - 1; j >= 0; j-- {
					idx = idx*NumStates + int(st[sub[j]])
				}
				arr[si][idx*2+out]++
			}
		}
		window.Push(r)
	}
	return counts
}

// subsetScore is the statically-filled-PHT correct count for one subset's
// joint distribution.
func subsetScore(flat []uint32) uint32 {
	score := uint32(0)
	for p := 0; p < len(flat)/2; p++ {
		score += max32(flat[p*2], flat[p*2+1])
	}
	return score
}

// SelectRefs performs oracle passes 2 and 3: with each branch's TopK
// candidates fixed, it first tabulates the exact joint distribution of
// every candidate *pair* with the branch outcome (so purely interacting
// correlations — e.g. branch X = Y AND Z of figure 1c, where neither Y
// nor Z alone predicts X — are found as long as both components are in
// the beam), picks the best pair, then greedily extends the best pair
// with each remaining candidate to choose the best triple. This
// approximates the paper's oracle choice of "the 1, 2 or 3 most important
// branches" (section 3.4); the approximation is exact for sizes 1 and 2
// within the beam.
func SelectRefs(t *trace.Trace, cands map[trace.Addr]*Candidates, cfg OracleConfig) *Selections {
	cfg = cfg.withDefaults()

	// Pass 2: all pairs among the beam.
	pairSubs := make(map[trace.Addr][][]int, len(cands))
	for pc, c := range cands {
		n := len(c.Refs)
		if n == 0 {
			continue
		}
		var subs [][]int
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				subs = append(subs, []int{i, j})
			}
		}
		if len(subs) == 0 {
			subs = [][]int{{0}} // single candidate: keep a size-1 subset
		}
		pairSubs[pc] = subs
	}
	pairCounts := jointPass(t, cands, pairSubs, cfg.WindowLen)

	type chosen struct {
		pair      []int
		pairScore uint32
	}
	bestPairs := make(map[trace.Addr]chosen, len(cands))
	for pc, subs := range pairSubs {
		arr := pairCounts[pc]
		var best chosen
		for si, sub := range subs {
			if s := subsetScore(arr[si]); best.pair == nil || s > best.pairScore {
				best = chosen{pair: sub, pairScore: s}
			}
		}
		bestPairs[pc] = best
	}

	// Pass 3: extend each branch's best pair with every remaining beam
	// candidate.
	tripleSubs := make(map[trace.Addr][][]int, len(cands))
	for pc, best := range bestPairs {
		if len(best.pair) < 2 {
			continue // single-candidate branch: no triples
		}
		n := len(cands[pc].Refs)
		var subs [][]int
		for i := 0; i < n; i++ {
			if i == best.pair[0] || i == best.pair[1] {
				continue
			}
			tri := []int{best.pair[0], best.pair[1], i}
			sort.Ints(tri)
			subs = append(subs, tri)
		}
		if len(subs) > 0 {
			tripleSubs[pc] = subs
		}
	}
	tripleCounts := jointPass(t, cands, tripleSubs, cfg.WindowLen)

	sel := &Selections{}
	for k := 1; k <= MaxSelectiveRefs; k++ {
		sel.BySize[k] = make(Assignment, len(cands))
	}
	for pc, c := range cands {
		if len(c.Refs) == 0 {
			continue
		}
		// Size 1: pass 1's exact single scores cover all candidates.
		sel.BySize[1][pc] = []Ref{c.Refs[0]}

		// Size 2: the exact best pair (or the lone candidate).
		best := bestPairs[pc]
		pairRefs := make([]Ref, len(best.pair))
		for i, ri := range best.pair {
			pairRefs[i] = c.Refs[ri]
		}
		sel.BySize[2][pc] = pairRefs

		// Size 3: the best greedy extension if it improves on the pair,
		// else the pair itself.
		chosenTriple := pairRefs
		bestScore := best.pairScore
		if subs, ok := tripleSubs[pc]; ok {
			arr := tripleCounts[pc]
			for si, sub := range subs {
				if s := subsetScore(arr[si]); s > bestScore {
					bestScore = s
					tri := make([]Ref, 3)
					for i, ri := range sub {
						tri[i] = c.Refs[ri]
					}
					chosenTriple = tri
				}
			}
		}
		sel.BySize[3][pc] = chosenTriple
	}
	return sel
}

// BuildSelective is the full oracle pipeline: profile candidates, select
// ref subsets, and return ready-to-run selective-history assignments for
// sizes 1..MaxSelectiveRefs.
func BuildSelective(t *trace.Trace, cfg OracleConfig) *Selections {
	return SelectRefs(t, ProfileCandidates(t, cfg), cfg)
}
