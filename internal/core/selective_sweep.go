package core

import (
	"fmt"

	"branchcorr/internal/bp"
	"branchcorr/internal/trace"
)

// SelectiveConfig is one column of a fused selective-predictor grid: a
// named Selective over its own window length, ref assignment, and state
// mode. Window sweeps (Figure 4) vary Window at a fixed Assign; figure
// panels vary Assign (history size) at a fixed Window.
type SelectiveConfig struct {
	Name   string
	Window int
	Assign Assignment
	Mode   Mode
}

// SelectiveSweep is the fused grid over a set of selective-history
// configurations: one walk of the packed columns drives every config.
//
// What is shared is the history window itself. Both tagging schemes
// resolve an entry's tag from strictly more-recent entries, so the first
// n steps of a walk over a maximal-capacity ring are exactly the walk a
// dedicated n-entry window would produce (Window.StatesWithin) — one
// ring sized to the largest config serves every window length, and the
// per-record Push is paid once instead of once per config. Per config:
// the pattern-counter tables and the ref lookups, held as dense per-ID
// columns so the per-record replay does no map access.
//
// SweepBlock is observationally identical, per config, to replaying the
// records through NewSelectiveMode(cfg...): the resolved pattern trains
// the same counter the scalar Predict/Update pair would, and the shared
// window commits the record after all configs resolved against it, the
// scalar ordering (Update pushes after training).
type SelectiveSweep struct {
	gridName string
	cfgs     []SelectiveConfig
	win      *Window
	tables   [][][]bp.Counter2 // [config][dense ID] -> pattern counters
	refs     [][][]Ref         // [config][dense ID] -> assigned refs
	states   [MaxSelectiveRefs]State
}

// NewSelectiveSweep returns a fused grid over cfgs in argument order.
// Every config needs a positive window length and at most
// MaxSelectiveRefs refs per branch.
func NewSelectiveSweep(gridName string, cfgs []SelectiveConfig) *SelectiveSweep {
	if len(cfgs) == 0 {
		panic("core: selective sweep needs at least one config")
	}
	maxWin := 0
	for _, cfg := range cfgs {
		if cfg.Window <= 0 {
			panic(fmt.Sprintf("core: selective sweep config %q window length %d must be positive", cfg.Name, cfg.Window))
		}
		maxWin = max(maxWin, cfg.Window)
		for pc, refs := range cfg.Assign {
			if len(refs) > MaxSelectiveRefs {
				panic(fmt.Sprintf("core: branch 0x%x assigned %d refs, max %d",
					uint32(pc), len(refs), MaxSelectiveRefs))
			}
		}
	}
	return &SelectiveSweep{
		gridName: gridName,
		cfgs:     append([]SelectiveConfig(nil), cfgs...),
		win:      NewWindow(maxWin),
		tables:   make([][][]bp.Counter2, len(cfgs)),
		refs:     make([][][]Ref, len(cfgs)),
	}
}

// GridName implements bp.SweepGrid.
func (g *SelectiveSweep) GridName() string { return g.gridName }

// ConfigNames implements bp.SweepGrid.
func (g *SelectiveSweep) ConfigNames() []string {
	out := make([]string, len(g.cfgs))
	for c, cfg := range g.cfgs {
		out[c] = cfg.Name
	}
	return out
}

// Configs implements bp.SweepGrid.
func (g *SelectiveSweep) Configs() []bp.Predictor {
	out := make([]bp.Predictor, len(g.cfgs))
	for c, cfg := range g.cfgs {
		out[c] = NewSelectiveMode(cfg.Name, cfg.Window, cfg.Assign, cfg.Mode)
	}
	return out
}

// Shard implements bp.SweepSharder: a fresh fused grid over the configs
// [lo, hi) (each shard owns a private window, which is exact: the window
// contents are stream-determined).
func (g *SelectiveSweep) Shard(lo, hi int) bp.SweepGrid {
	checkSelShardRange(lo, hi, len(g.cfgs))
	return NewSelectiveSweep(g.gridName, g.cfgs[lo:hi])
}

func checkSelShardRange(lo, hi, n int) {
	if lo < 0 || hi > n || lo >= hi {
		panic(fmt.Sprintf("core: sweep shard range [%d,%d) invalid for %d configs", lo, hi, n))
	}
}

// extend grows each config's per-ID ref and table columns to cover
// addrs, computing entries only for newly interned IDs. Tables are
// pre-created here (pow3-sized by ref count) so the replay loop never
// allocates; the amortized-doubling growth mirrors the bp sweep columns.
func (g *SelectiveSweep) extend(addrs []trace.Addr) {
	for c := range g.cfgs {
		if len(addrs) <= len(g.refs[c]) {
			continue
		}
		refs := make([][]Ref, len(addrs), max(len(addrs), 2*cap(g.refs[c])))
		tables := make([][]bp.Counter2, len(addrs), cap(refs))
		copy(refs, g.refs[c])
		copy(tables, g.tables[c])
		assign := g.cfgs[c].Assign
		for id := len(g.refs[c]); id < len(addrs); id++ {
			r := assign[addrs[id]]
			refs[id] = r
			tables[id] = make([]bp.Counter2, pow3[len(r)])
		}
		g.refs[c] = refs
		g.tables[c] = tables
	}
}

// SweepBlock implements bp.SweepKernel.
func (g *SelectiveSweep) SweepBlock(blk bp.KernelBlock, correct []int32) {
	g.extend(blk.Addrs)
	win := g.win
	cfgs := g.cfgs
	correct = correct[:len(cfgs)]
	for j := blk.Lo; j < blk.Hi; j++ {
		id := blk.IDs[j]
		taken := blk.Taken[j>>6]>>(uint(j)&63)&1 != 0
		for c := range cfgs {
			refs := g.refs[c][id]
			tbl := g.tables[c][id]
			idx := 0
			if len(refs) > 0 {
				st := g.states[:len(refs)]
				win.StatesWithin(cfgs[c].Window, refs, st)
				if cfgs[c].Mode == ModePresence {
					for i := len(refs) - 1; i >= 0; i-- {
						idx <<= 1
						if st[i] != StateAbsent {
							idx |= 1
						}
					}
				} else {
					for i := len(refs) - 1; i >= 0; i-- {
						idx = idx*NumStates + int(st[i])
					}
				}
			}
			cnt := tbl[idx]
			if cnt.Taken() == taken {
				correct[c]++
			}
			tbl[idx] = cnt.Next(taken)
		}
		win.Push(trace.Record{
			PC:       blk.Addrs[id],
			Taken:    taken,
			Backward: blk.Back[j>>6]>>(uint(j)&63)&1 != 0,
		})
	}
}

var (
	_ bp.SweepKernel  = (*SelectiveSweep)(nil)
	_ bp.SweepSharder = (*SelectiveSweep)(nil)
)
