package core

import (
	"testing"

	"branchcorr/internal/sim"
	"branchcorr/internal/trace"
)

func TestSubsetScore(t *testing.T) {
	// Two patterns: pattern 0 majority taken (5 vs 2), pattern 1 majority
	// not-taken (1 vs 4): score = 5 + 4.
	flat := []uint32{5, 2, 1, 4}
	if got := subsetScore(flat); got != 9 {
		t.Errorf("subsetScore = %d, want 9", got)
	}
}

func TestSelectionsAreMonotone(t *testing.T) {
	// By construction the chosen set for size k+1 never scores below the
	// size-k choice; spot-check sizes on a correlated trace by comparing
	// assignment sizes.
	tr := correlatedPair(2000, 2)
	sel := BuildSelective(tr, OracleConfig{WindowLen: 16, TopK: 8})
	for pc := range sel.BySize[1] {
		n1, n2, n3 := len(sel.BySize[1][pc]), len(sel.BySize[2][pc]), len(sel.BySize[3][pc])
		if n1 > 1 || n2 > 2 || n3 > 3 {
			t.Fatalf("oversized assignment for 0x%x: %d/%d/%d", uint32(pc), n1, n2, n3)
		}
		if n2 < n1 || n3 < n2 {
			t.Fatalf("assignment sizes shrink for 0x%x: %d/%d/%d", uint32(pc), n1, n2, n3)
		}
	}
}

func TestProfileCandidatesFindsCorrelatedBranch(t *testing.T) {
	tr := correlatedPair(3000, 3)
	cands := ProfileCandidates(tr, OracleConfig{WindowLen: 16})
	c := cands[0x200]
	if c == nil || len(c.Refs) == 0 {
		t.Fatal("no candidates for X")
	}
	top := c.Refs[0]
	if top.PC != 0x100 {
		t.Errorf("top candidate = %v, want branch 0x100", top)
	}
	if c.Total != 3000 {
		t.Errorf("Total = %d, want 3000", c.Total)
	}
	// The top score should be near-perfect: knowing Y determines X.
	if float64(c.Scores[0])/float64(c.Total) < 0.99 {
		t.Errorf("top candidate score = %d/%d, want near-perfect", c.Scores[0], c.Total)
	}
}

func TestProfileCandidatesSchemeFilter(t *testing.T) {
	tr := correlatedPair(500, 1)
	cands := ProfileCandidates(tr, OracleConfig{WindowLen: 8, TopK: 8, Schemes: []Scheme{BackwardCount}})
	for _, c := range cands {
		for _, r := range c.Refs {
			if r.Scheme != BackwardCount {
				t.Fatalf("scheme filter leaked ref %v", r)
			}
		}
	}
}

func TestBuildSelectiveEndToEnd(t *testing.T) {
	tr := correlatedPair(4000, 3)
	sel := BuildSelective(tr, OracleConfig{WindowLen: 16})
	for k := 1; k <= MaxSelectiveRefs; k++ {
		refs := sel.BySize[k][0x200]
		if len(refs) == 0 {
			t.Fatalf("size %d: no refs chosen for X", k)
		}
		if len(refs) > k {
			t.Fatalf("size %d: %d refs chosen", k, len(refs))
		}
		p := NewSelective("sel", 16, sel.BySize[k])
		res := sim.RunOne(tr, p)
		if acc := res.Branch(0x200).Accuracy(); acc < 0.99 {
			t.Errorf("size %d: oracle-selected accuracy on X = %.3f", k, acc)
		}
	}
}

func TestOracleAndCorrelationNeedsTwoRefs(t *testing.T) {
	// X = Y AND Z (figure 1c): the 2-ref oracle selection must include
	// both Y and Z and predict near-perfectly; 1-ref cannot.
	tr := trace.New("and", 0)
	ry, rz := lcg(21), lcg(22)
	for i := 0; i < 8000; i++ {
		y, z := ry.bit(), rz.bit()
		tr.Append(rec(0x100, y))
		tr.Append(rec(0x104, z))
		tr.Append(rec(0x200, y && z))
	}
	sel := BuildSelective(tr, OracleConfig{WindowLen: 16})
	refs2 := sel.BySize[2][0x200]
	pcs := map[trace.Addr]bool{}
	for _, r := range refs2 {
		pcs[r.PC] = true
	}
	if !pcs[0x100] || !pcs[0x104] {
		t.Errorf("2-ref selection = %v, want refs to 0x100 and 0x104", refs2)
	}
	acc := func(k int) float64 {
		res := sim.RunOne(tr, NewSelective("s", 16, sel.BySize[k]))
		return res.Branch(0x200).Accuracy()
	}
	a1, a2 := acc(1), acc(2)
	if a2 < 0.99 {
		t.Errorf("2-ref accuracy = %.3f, want >= 0.99", a2)
	}
	if a1 > a2-0.1 {
		t.Errorf("1-ref (%.3f) should trail 2-ref (%.3f) clearly", a1, a2)
	}
}

func TestOracleMonotoneInSize(t *testing.T) {
	// Selection quality must not degrade with more refs on any of a few
	// synthetic traces (profile-score selection guarantees it for the
	// profile metric; check the adaptive simulation tracks it within
	// noise).
	tr := trace.New("mix", 0)
	ry, rz, rn := lcg(31), lcg(32), lcg(33)
	for i := 0; i < 6000; i++ {
		y, z := ry.bit(), rz.bit()
		tr.Append(rec(0x100, y))
		tr.Append(rec(0x104, z))
		tr.Append(rec(0x108, rn.bit()))
		tr.Append(rec(0x200, y != z)) // XOR: needs both
	}
	sel := BuildSelective(tr, OracleConfig{WindowLen: 16})
	var accs [4]float64
	for k := 1; k <= 3; k++ {
		res := sim.RunOne(tr, NewSelective("s", 16, sel.BySize[k]))
		accs[k] = res.Branch(0x200).Accuracy()
	}
	if accs[2] < 0.99 || accs[3] < 0.99 {
		t.Errorf("XOR accuracies: 2-ref %.3f, 3-ref %.3f, want >= 0.99", accs[2], accs[3])
	}
	if accs[1] > 0.65 {
		t.Errorf("1-ref on XOR = %.3f, want near 0.5 (no single ref helps)", accs[1])
	}
}

func TestOracleConfigDefaults(t *testing.T) {
	cfg := OracleConfig{}.withDefaults()
	if cfg.WindowLen != 16 || cfg.TopK != 16 || cfg.MaxCandidates != 2048 {
		t.Errorf("defaults = %+v", cfg)
	}
	if !cfg.schemeAllowed(Occurrence) || !cfg.schemeAllowed(BackwardCount) {
		t.Error("empty scheme list should allow both")
	}
	cfg.Schemes = []Scheme{Occurrence}
	if !cfg.schemeAllowed(Occurrence) || cfg.schemeAllowed(BackwardCount) {
		t.Error("scheme filter wrong")
	}
}

func TestOracleTopKLimit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("TopK beyond the scratch limit should panic")
		}
	}()
	ProfileCandidates(trace.New("x", 0), OracleConfig{TopK: maxTopK + 1})
}

func TestCandidatePruning(t *testing.T) {
	// Thousands of distinct noise branches precede X; with a small
	// candidate cap the profile must survive (and still find Y, which
	// appears every time while noise branches are one-shot).
	tr := trace.New("prune", 0)
	rng := lcg(41)
	pc := trace.Addr(0x1000)
	for i := 0; i < 3000; i++ {
		y := rng.bit()
		tr.Append(rec(0x100, y))
		tr.Append(rec(pc, true)) // fresh PC each iteration
		pc += 4
		tr.Append(rec(0x200, y))
	}
	cands := ProfileCandidates(tr, OracleConfig{WindowLen: 8, TopK: 2, MaxCandidates: 64})
	c := cands[0x200]
	if c == nil || len(c.Refs) == 0 || c.Refs[0].PC != 0x100 {
		t.Fatalf("pruned profile lost the correlated branch: %+v", c)
	}
}

func TestProfileScoreBounds(t *testing.T) {
	// Property: every candidate's profile score is at most the branch's
	// total occurrences and at least the ideal-static correct count is a
	// lower bound for the TOP candidate (3-valued info can only help).
	tr := correlatedPair(1000, 2)
	cands := ProfileCandidates(tr, OracleConfig{WindowLen: 8, TopK: 8})
	st := trace.Summarize(tr)
	for pc, c := range cands {
		site := st.Sites[pc]
		maj := site.Taken
		if nt := site.Count - site.Taken; nt > maj {
			maj = nt
		}
		for i, s := range c.Scores {
			if int(s) > site.Count {
				t.Errorf("branch 0x%x cand %d: score %d > total %d", uint32(pc), i, s, site.Count)
			}
		}
		if len(c.Scores) > 0 && int(c.Scores[0]) < maj {
			t.Errorf("branch 0x%x: top score %d below static majority %d", uint32(pc), c.Scores[0], maj)
		}
	}
}
