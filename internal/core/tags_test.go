package core

import (
	"testing"

	"branchcorr/internal/trace"
)

func rec(pc trace.Addr, taken bool) trace.Record {
	return trace.Record{PC: pc, Taken: taken}
}

func backTaken(pc trace.Addr) trace.Record {
	return trace.Record{PC: pc, Taken: true, Backward: true}
}

func TestWindowPushEvict(t *testing.T) {
	w := NewWindow(3)
	if w.Len() != 3 || w.Size() != 0 {
		t.Fatalf("fresh window: len=%d size=%d", w.Len(), w.Size())
	}
	for i := 1; i <= 5; i++ {
		w.Push(rec(trace.Addr(i), true))
	}
	if w.Size() != 3 {
		t.Fatalf("Size = %d, want 3", w.Size())
	}
	// Most recent first: 5, 4, 3.
	for i, want := range []trace.Addr{5, 4, 3} {
		if got := w.at(i); got.PC != want {
			t.Errorf("at(%d).PC = %d, want %d", i, got.PC, want)
		}
	}
}

func TestWindowPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewWindow(0) should panic")
		}
	}()
	NewWindow(0)
}

// collectRefs gathers everything Visit emits.
func collectRefs(w *Window) map[Ref]bool {
	out := make(map[Ref]bool)
	w.Visit(func(ref Ref, taken bool) bool {
		out[ref] = taken
		return true
	})
	return out
}

func TestVisitOccurrenceTags(t *testing.T) {
	w := NewWindow(8)
	// Push A(T), B(N), A(N): most recent A has occ tag 0, older A tag 1.
	w.Push(rec(0xA, true))
	w.Push(rec(0xB, false))
	w.Push(rec(0xA, false))
	got := collectRefs(w)
	cases := []struct {
		ref   Ref
		taken bool
	}{
		{Ref{0xA, Occurrence, 0}, false}, // most recent A was not-taken
		{Ref{0xA, Occurrence, 1}, true},  // older A was taken
		{Ref{0xB, Occurrence, 0}, false},
	}
	for _, c := range cases {
		taken, ok := got[c.ref]
		if !ok {
			t.Errorf("ref %v not emitted", c.ref)
		} else if taken != c.taken {
			t.Errorf("ref %v taken = %v, want %v", c.ref, taken, c.taken)
		}
	}
	if _, ok := got[Ref{0xA, Occurrence, 2}]; ok {
		t.Error("phantom occurrence tag 2 for A")
	}
}

func TestVisitBackwardCountTags(t *testing.T) {
	w := NewWindow(8)
	// Stream (oldest→newest): X(T), back(T), Y(N), back(T), Z(T).
	// Backward tags (count of taken backward branches more recent than
	// the entry): Z:0, the newest back:0, Y:1, older back:1, X:2.
	w.Push(rec(0x1, true))   // X
	w.Push(backTaken(0x100)) // loop branch
	w.Push(rec(0x2, false))  // Y
	w.Push(backTaken(0x100)) // loop branch again
	w.Push(rec(0x3, true))   // Z
	got := collectRefs(w)
	cases := []struct {
		ref   Ref
		taken bool
	}{
		{Ref{0x3, BackwardCount, 0}, true},
		{Ref{0x100, BackwardCount, 0}, true},
		{Ref{0x2, BackwardCount, 1}, false},
		{Ref{0x100, BackwardCount, 1}, true},
		{Ref{0x1, BackwardCount, 2}, true},
	}
	for _, c := range cases {
		taken, ok := got[c.ref]
		if !ok {
			t.Errorf("ref %v not emitted", c.ref)
		} else if taken != c.taken {
			t.Errorf("ref %v taken = %v, want %v", c.ref, taken, c.taken)
		}
	}
}

func TestVisitNotTakenBackwardDoesNotCount(t *testing.T) {
	w := NewWindow(4)
	w.Push(rec(0x1, true))
	w.Push(trace.Record{PC: 0x100, Taken: false, Backward: true}) // not taken
	w.Push(rec(0x2, true))
	got := collectRefs(w)
	// A not-taken backward branch closes no iteration: X keeps tag 0.
	if _, ok := got[Ref{0x1, BackwardCount, 0}]; !ok {
		t.Error("not-taken backward branch must not advance the iteration count")
	}
}

func TestVisitTagOverflowSkipped(t *testing.T) {
	// More instances than MaxTag+1: the excess must be silently
	// unnameable, not emitted with wrapped tags.
	w := NewWindow(MaxTag + 9)
	for i := 0; i < MaxTag+9; i++ {
		w.Push(backTaken(0xA)) // same PC, all taken backward
	}
	count := 0
	w.Visit(func(ref Ref, taken bool) bool {
		if ref.Tag > MaxTag {
			t.Errorf("emitted over-limit tag %v", ref)
		}
		count++
		return true
	})
	// Tags 0..MaxTag for each scheme: (MaxTag+1)*2 emissions.
	if want := (MaxTag + 1) * 2; count != want {
		t.Errorf("emitted %d refs, want %d", count, want)
	}
}

func TestVisitEarlyStop(t *testing.T) {
	w := NewWindow(8)
	for i := 0; i < 8; i++ {
		w.Push(rec(trace.Addr(i), true))
	}
	count := 0
	w.Visit(func(ref Ref, taken bool) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("Visit did not stop early: %d emissions", count)
	}
}

func TestVisitDuplicateBackwardRefSuppressed(t *testing.T) {
	// Same PC twice within one iteration (no backward branch between):
	// only the most recent instance owns the (PC, back0) ref.
	w := NewWindow(8)
	w.Push(rec(0xA, true))  // older instance
	w.Push(rec(0xA, false)) // newer instance
	emitted := 0
	w.Visit(func(ref Ref, taken bool) bool {
		if ref == (Ref{0xA, BackwardCount, 0}) {
			emitted++
			if taken {
				t.Error("duplicate backward ref resolved to the older instance")
			}
		}
		return true
	})
	if emitted != 1 {
		t.Errorf("backward ref emitted %d times, want 1", emitted)
	}
}

func TestStatesResolution(t *testing.T) {
	w := NewWindow(8)
	w.Push(rec(0xA, true))
	w.Push(rec(0xB, false))
	refs := []Ref{
		{0xA, Occurrence, 0},
		{0xB, Occurrence, 0},
		{0xC, Occurrence, 0}, // absent
		{0xA, Occurrence, 1}, // absent (only one A)
	}
	states := make([]State, len(refs))
	w.States(refs, states)
	want := []State{StateTaken, StateNotTaken, StateAbsent, StateAbsent}
	for i := range want {
		if states[i] != want[i] {
			t.Errorf("state[%d] = %v, want %v", i, states[i], want[i])
		}
	}
}

func TestStatesMostRecentMatchWins(t *testing.T) {
	// Two instances of PC 0xA with the same backward tag (no backward
	// branches in between): the most recent one's outcome must win.
	w := NewWindow(8)
	w.Push(rec(0xA, true))  // older, tag back0
	w.Push(rec(0xA, false)) // newer, tag back0 too
	refs := []Ref{{0xA, BackwardCount, 0}}
	states := make([]State, 1)
	w.States(refs, states)
	if states[0] != StateNotTaken {
		t.Errorf("state = %v, want most recent (not-taken)", states[0])
	}
}

func TestStatesWindowBoundary(t *testing.T) {
	// A correlated branch pushed out of the window becomes absent.
	w := NewWindow(2)
	w.Push(rec(0xA, true))
	w.Push(rec(0xB, true))
	states := make([]State, 1)
	w.States([]Ref{{0xA, Occurrence, 0}}, states)
	if states[0] != StateTaken {
		t.Fatalf("pre-evict state = %v", states[0])
	}
	w.Push(rec(0xC, true)) // evicts A
	w.States([]Ref{{0xA, Occurrence, 0}}, states)
	if states[0] != StateAbsent {
		t.Errorf("post-evict state = %v, want absent", states[0])
	}
}

func TestStringers(t *testing.T) {
	if Occurrence.String() != "occ" || BackwardCount.String() != "back" {
		t.Error("Scheme strings wrong")
	}
	if Scheme(9).String() != "scheme(9)" {
		t.Errorf("unknown scheme: %q", Scheme(9).String())
	}
	if StateTaken.String() != "T" || StateNotTaken.String() != "N" || StateAbsent.String() != "-" {
		t.Error("State strings wrong")
	}
	if State(9).String() != "?" {
		t.Error("unknown state string")
	}
	r := Ref{PC: 0x4000, Scheme: Occurrence, Tag: 2}
	if r.String() != "0x4000/occ2" {
		t.Errorf("Ref string = %q", r.String())
	}
}
