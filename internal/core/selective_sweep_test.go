package core

import (
	"testing"

	"branchcorr/internal/bp"
	"branchcorr/internal/sim"
	"branchcorr/internal/trace"
)

// selSweepTrace builds a deterministic trace exercising every selective
// mechanism at once: an occurrence-correlated pair (0x200 copies 0x100),
// a cross-iteration correlation over a taken backward loop branch
// (0x210 copies the previous iteration's 0x100), aliasing noise, and
// variable-length iteration bodies.
func selSweepTrace(iters int) *trace.Trace {
	tr := trace.New("sel-sweep", 0)
	rng := lcg(21)
	noise := lcg(34)
	prevY := true
	for i := 0; i < iters; i++ {
		y := rng.bit()
		tr.Append(rec(0x100, y))
		for g := 0; g < i%4; g++ {
			tr.Append(rec(trace.Addr(0x300+g*4), noise.bit()))
		}
		tr.Append(rec(0x200, y))
		tr.Append(rec(0x210, prevY))
		tr.Append(backTaken(0x1F0))
		prevY = y
	}
	return tr
}

// selSweepConfigs is the conformance grid: mixed window lengths, both
// modes, 0–3 refs per branch, and both tagging schemes.
func selSweepConfigs() []SelectiveConfig {
	pair := Assignment{0x200: {Ref{0x100, Occurrence, 0}}}
	multi := Assignment{
		0x200: {Ref{0x100, Occurrence, 0}, Ref{0x300, Occurrence, 0}, Ref{0x1F0, BackwardCount, 0}},
		0x210: {Ref{0x100, BackwardCount, 1}},
	}
	return []SelectiveConfig{
		{Name: "pair(16)", Window: 16, Assign: pair},
		{Name: "multi(8)", Window: 8, Assign: multi},
		{Name: "multi(24,presence)", Window: 24, Assign: multi, Mode: ModePresence},
		{Name: "empty(4)", Window: 4, Assign: Assignment{}},
		{Name: "pair(32,presence)", Window: 32, Assign: pair, Mode: ModePresence},
	}
}

// selBlockOf builds the kernel input for a packed trace over [lo, hi).
func selBlockOf(pt *trace.Packed, lo, hi int) bp.KernelBlock {
	return bp.KernelBlock{
		IDs:   pt.IDs(),
		Taken: pt.TakenWords(),
		Back:  pt.BackwardWords(),
		Addrs: pt.Addrs(),
		Lo:    lo,
		Hi:    hi,
	}
}

// selSweepTotals replays the packed trace through SweepBlock in chunks.
func selSweepTotals(g *SelectiveSweep, pt *trace.Packed, chunk int) []int32 {
	correct := make([]int32, len(g.ConfigNames()))
	for at := 0; at < pt.Len(); at += chunk {
		g.SweepBlock(selBlockOf(pt, at, min(at+chunk, pt.Len())), correct)
	}
	return correct
}

// TestSelectiveSweepScalarConformance pins the fused selective grid
// bit-identical, per config, to independent scalar Selective replays,
// across chunk sizes including single-record and word-straddling ones.
func TestSelectiveSweepScalarConformance(t *testing.T) {
	tr := selSweepTrace(4000)
	pt := trace.Pack(tr)
	cfgs := selSweepConfigs()
	want := make([]int32, len(cfgs))
	for c, cfg := range cfgs {
		p := NewSelectiveMode(cfg.Name, cfg.Window, cfg.Assign, cfg.Mode)
		for _, r := range tr.Records() {
			if p.Predict(r) == r.Taken {
				want[c]++
			}
			p.Update(r)
		}
	}
	for _, chunk := range []int{1, 63, 64, 65, 1000, tr.Len()} {
		got := selSweepTotals(NewSelectiveSweep("sel", cfgs), pt, chunk)
		for c := range want {
			if got[c] != want[c] {
				t.Errorf("chunk=%d config %s: %d correct (fused) vs %d (scalar)",
					chunk, cfgs[c].Name, got[c], want[c])
			}
		}
	}
}

// TestSelectiveSweepShardComposition pins shard replays to the matching
// slice of the unsharded totals (each shard owns a private ring fed the
// identical stream, so composition is exact).
func TestSelectiveSweepShardComposition(t *testing.T) {
	tr := selSweepTrace(3000)
	pt := trace.Pack(tr)
	cfgs := selSweepConfigs()
	want := selSweepTotals(NewSelectiveSweep("sel", cfgs), pt, 1000)
	names := NewSelectiveSweep("sel", cfgs).ConfigNames()
	for _, r := range [][2]int{{0, 1}, {0, 2}, {2, 5}, {1, 4}, {0, 5}} {
		lo, hi := r[0], r[1]
		sub := NewSelectiveSweep("sel", cfgs).Shard(lo, hi)
		kernel := sub.(bp.SweepKernel)
		subNames := sub.ConfigNames()
		got := selSweepTotals(kernel.(*SelectiveSweep), pt, 1000)
		for c := range got {
			if subNames[c] != names[lo+c] {
				t.Errorf("shard [%d,%d): config %d named %q, want %q", lo, hi, c, subNames[c], names[lo+c])
			}
			if got[c] != want[lo+c] {
				t.Errorf("shard [%d,%d): config %s: %d correct vs %d unsharded",
					lo, hi, subNames[c], got[c], want[lo+c])
			}
		}
	}
}

// TestSelectiveSweepShardedSimulate drives the grid through the sim
// scheduler at several shard counts: the Figure 4/5 integration path —
// outcomes must be byte-identical to the sequential engine.
func TestSelectiveSweepShardedSimulate(t *testing.T) {
	tr := selSweepTrace(3000)
	cfgs := selSweepConfigs()
	base := sim.SimulateSweep(tr, NewSelectiveSweep("sel", cfgs), sim.Options{})
	for _, par := range []int{2, 3, -1} {
		out := sim.SimulateSweep(tr, NewSelectiveSweep("sel", cfgs), sim.Options{Parallel: par})
		for c := range base.Correct {
			if out.Correct[c] != base.Correct[c] {
				t.Errorf("parallel=%d config %s: %d correct, want %d",
					par, base.Configs[c], out.Correct[c], base.Correct[c])
			}
		}
	}
}

// TestSelectiveSweepConfigNames pins the grid labels to the scalar
// predictors Configs() materializes.
func TestSelectiveSweepConfigNames(t *testing.T) {
	g := NewSelectiveSweep("sel", selSweepConfigs())
	names := g.ConfigNames()
	preds := g.Configs()
	if g.GridName() != "sel" {
		t.Errorf("grid name %q", g.GridName())
	}
	for c, p := range preds {
		if names[c] != p.Name() {
			t.Errorf("config %d: grid name %q vs scalar name %q", c, names[c], p.Name())
		}
	}
}

// TestSelectiveSweepAllocs pins steady-state SweepBlock at zero
// allocations: refs and tables are dense per-ID columns pre-created on
// extension, and the shared ring's resolution walk reuses the window's
// scratch.
func TestSelectiveSweepAllocs(t *testing.T) {
	tr := selSweepTrace(3000)
	pt := trace.Pack(tr)
	g := NewSelectiveSweep("sel", selSweepConfigs())
	correct := make([]int32, len(g.ConfigNames()))
	full := selBlockOf(pt, 0, pt.Len())
	g.SweepBlock(full, correct) // warm-up extends the per-ID columns
	for name, blk := range map[string]bp.KernelBlock{"full": full, "mid": selBlockOf(pt, pt.Len()/4, pt.Len()/2)} {
		if n := testing.AllocsPerRun(10, func() { g.SweepBlock(blk, correct) }); n != 0 {
			t.Errorf("%.1f allocs per steady-state SweepBlock (%s range), want 0", n, name)
		}
	}
}

// TestSelectiveSweepValidation pins the loud constructor failures.
func TestSelectiveSweepValidation(t *testing.T) {
	cases := map[string]func(){
		"empty":       func() { NewSelectiveSweep("g", nil) },
		"zero window": func() { NewSelectiveSweep("g", []SelectiveConfig{{Name: "x", Window: 0}}) },
		"over refs": func() {
			NewSelectiveSweep("g", []SelectiveConfig{{
				Name: "x", Window: 8, Assign: Assignment{0x10: make([]Ref, 4)},
			}})
		},
		"bad shard": func() {
			NewSelectiveSweep("g", selSweepConfigs()).Shard(3, 2)
		},
	}
	for name, build := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("did not panic")
				}
			}()
			build()
		})
	}
}

// TestStatesWithinMatchesDedicatedWindow is the prefix property the
// fused window sharing rests on: resolving refs within the n most
// recent entries of a large ring must equal resolving them against a
// dedicated n-capacity window fed the identical stream, at every step.
func TestStatesWithinMatchesDedicatedWindow(t *testing.T) {
	tr := selSweepTrace(600)
	refs := []Ref{
		{0x100, Occurrence, 0}, {0x100, Occurrence, 2}, {0x200, Occurrence, 1},
		{0x100, BackwardCount, 1}, {0x1F0, BackwardCount, 0}, {0x300, BackwardCount, 2},
	}
	for _, n := range []int{1, 2, 5, 16, 32} {
		big := NewWindow(32)
		small := NewWindow(n)
		wantSt := make([]State, len(refs))
		gotSt := make([]State, len(refs))
		for i, r := range tr.Records() {
			small.States(refs, wantSt)
			big.StatesWithin(n, refs, gotSt)
			for k := range refs {
				if gotSt[k] != wantSt[k] {
					t.Fatalf("n=%d step %d ref %v: StatesWithin %v, dedicated window %v",
						n, i, refs[k], gotSt[k], wantSt[k])
				}
			}
			small.Push(r)
			big.Push(r)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("StatesWithin(0) did not panic")
		}
	}()
	NewWindow(4).StatesWithin(0, refs, make([]State, len(refs)))
}
