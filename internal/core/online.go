package core

import (
	"fmt"
	"sort"

	"branchcorr/internal/bp"
	"branchcorr/internal/trace"
)

// OnlineSelective is a practical (non-oracle) selective-history
// predictor — the "better or less complex predictors" the paper's
// introduction hopes its analysis enables. Where the hypothetical §3.4
// predictor gets its 1–3 correlated branches from an offline oracle,
// this one discovers them online:
//
//   - For every branch it keeps agreement statistics over candidate
//     tagged instances from the window (occurrence tags, §3.2): how
//     often the candidate's direction matched the branch outcome.
//     Candidates whose agreement rate deviates from 1/2 — correlated
//     OR anti-correlated — are informative; candidates near 1/2 are
//     noise.
//   - Every reselection interval the branch adopts the candidates with
//     the largest agreement-rate deviation as its selective history and
//     (re)starts a fresh pattern table over them.
//
// It is interference-free like the paper's predictor (per-branch
// tables) but requires no profiling pass, making it a fair "what could
// be built from this insight" comparison point: see
// BenchmarkExtensionOnlineSelective for how close it gets to the
// oracle-selected version.
type OnlineSelective struct {
	window  *Window
	refs    int // history size (1..MaxSelectiveRefs)
	period  int // reselection interval (per-branch occurrences)
	perPC   map[trace.Addr]*onlineState
	scratch [MaxSelectiveRefs]State
}

// onlineState is one branch's discovery and prediction state.
type onlineState struct {
	// candidate agreement statistics: [agreements, observations]
	scores map[Ref]*[2]uint16
	seen   int
	// adopted selective history
	refs  []Ref
	table []bp.Counter2
	// fallback while no refs are adopted
	bias bp.Counter2
}

// NewOnlineSelective returns an online selective predictor using up to
// refs correlated branches per static branch (1..MaxSelectiveRefs), a
// window of n prior branches, and reselection every period occurrences.
func NewOnlineSelective(refs, n, period int) *OnlineSelective {
	if refs < 1 || refs > MaxSelectiveRefs {
		panic(fmt.Sprintf("core: online selective refs %d out of range [1,%d]", refs, MaxSelectiveRefs))
	}
	if period < 16 {
		panic(fmt.Sprintf("core: online selective period %d too small (min 16)", period))
	}
	return &OnlineSelective{
		window: NewWindow(n),
		refs:   refs,
		period: period,
		perPC:  make(map[trace.Addr]*onlineState),
	}
}

// Name implements bp.Predictor.
func (p *OnlineSelective) Name() string {
	return fmt.Sprintf("online-selective(%d,%d)", p.refs, p.window.Len())
}

func (p *OnlineSelective) state(pc trace.Addr) *onlineState {
	st := p.perPC[pc]
	if st == nil {
		st = &onlineState{scores: make(map[Ref]*[2]uint16), bias: bp.WeaklyTaken}
		p.perPC[pc] = st
	}
	return st
}

// Predict implements bp.Predictor.
func (p *OnlineSelective) Predict(r trace.Record) bool {
	st := p.state(r.PC)
	if len(st.refs) == 0 {
		return st.bias.Taken()
	}
	p.window.States(st.refs, p.scratch[:len(st.refs)])
	return st.table[p.pattern(st)].Taken()
}

func (p *OnlineSelective) pattern(st *onlineState) int {
	idx := 0
	for i := len(st.refs) - 1; i >= 0; i-- {
		idx = idx*NumStates + int(p.scratch[i])
	}
	return idx
}

// Update implements bp.Predictor: trains the adopted pattern table,
// scores the window's candidates against the outcome, and periodically
// re-adopts the strongest candidates.
func (p *OnlineSelective) Update(r trace.Record) {
	st := p.state(r.PC)
	if len(st.refs) == 0 {
		st.bias = st.bias.Next(r.Taken)
	} else {
		p.window.States(st.refs, p.scratch[:len(st.refs)])
		i := p.pattern(st)
		st.table[i] = st.table[i].Next(r.Taken)
	}

	// Record agreement with the outcome. Only occurrence-tagged
	// candidates are scored: with no loop boundary between two schemes'
	// tags they alias to the same instance, and two aliases of one
	// branch would crowd out a genuine second correlation. Absent
	// candidates are not scored (no evidence either way).
	p.window.Visit(func(ref Ref, taken bool) bool {
		if ref.Scheme != Occurrence {
			return true
		}
		sc := st.scores[ref]
		if sc == nil {
			sc = &[2]uint16{}
			st.scores[ref] = sc
		}
		if taken == r.Taken {
			sc[0]++
		}
		sc[1]++
		return true
	})

	st.seen++
	if st.seen%p.period == 0 {
		p.reselect(st)
	}
	p.window.Push(r)
}

// reselect adopts the refs whose agreement rate deviates most from 1/2
// (correlation OR anti-correlation is equally exploitable by the pattern
// table).
func (p *OnlineSelective) reselect(st *onlineState) {
	type scored struct {
		ref Ref
		dev int
	}
	qualified := make([]scored, 0, len(st.scores))
	for ref, sc := range st.scores {
		agree, total := int(sc[0]), int(sc[1])
		if total < 48 {
			continue // not enough evidence yet
		}
		// Deviation of the agreement rate from 1/2, in 1/1024 units.
		dev := (2*agree - total) * 1024 / total
		if dev < 0 {
			dev = -dev
		}
		// Require a clear signal before adopting (rate beyond 62%/38%).
		if dev < 256 {
			continue
		}
		qualified = append(qualified, scored{ref, dev})
	}
	// Total order (deviation, then ref identity) so the adopted set never
	// depends on map iteration order.
	sort.Slice(qualified, func(i, j int) bool {
		if qualified[i].dev != qualified[j].dev {
			return qualified[i].dev > qualified[j].dev
		}
		return refLess(qualified[i].ref, qualified[j].ref)
	})
	if len(qualified) > p.refs {
		qualified = qualified[:p.refs]
	}
	best := make([]Ref, len(qualified))
	for i, q := range qualified {
		best[i] = q.ref
	}
	if sameRefs(best, st.refs) {
		return
	}
	st.refs = best
	st.table = make([]bp.Counter2, pow3[len(best)])
	// Halve the evidence so the next interval re-validates the choice
	// rather than locking it in forever (and keeps counts well below
	// uint16 range).
	for _, sc := range st.scores {
		sc[0] /= 2
		sc[1] /= 2
	}
}

func sameRefs(a, b []Ref) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

var _ bp.Predictor = (*OnlineSelective)(nil)
