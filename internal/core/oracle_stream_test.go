package core

import (
	"bytes"
	"fmt"
	"testing"

	"branchcorr/internal/trace"
)

// Streamed-vs-packed differential tests: the oracle over a chunked
// BlockSource — at chunk sizes straddling the window length and down to
// one record per chunk — must be bit-identical to the packed in-memory
// path, which is itself pinned against the reference implementation.

// streamChunks returns the adversarial chunk sizes for window length w:
// single-record, window±1 (carry exactly full, one short, one over), and
// a large chunk.
func streamChunks(w int) []int {
	return []int{1, w - 1, w, w + 1, 1000}
}

func TestProfileCandidatesBlocksMatchesPacked(t *testing.T) {
	for _, tr := range differentialTraces() {
		pt := trace.Pack(tr)
		for _, w := range []int{8, 16, 32} {
			cfg := OracleConfig{WindowLen: w}
			want := ProfileCandidatesPacked(pt, cfg)
			for _, chunk := range streamChunks(w) {
				t.Run(fmt.Sprintf("%s/w=%d/chunk=%d", tr.Name(), w, chunk), func(t *testing.T) {
					got, err := ProfileCandidatesBlocks(pt.Blocks(chunk), cfg)
					if err != nil {
						t.Fatal(err)
					}
					mustEqualCandidates(t, got, want)
				})
			}
		}
	}
}

func TestSelectRefsBlocksMatchesPacked(t *testing.T) {
	for _, tr := range differentialTraces() {
		pt := trace.Pack(tr)
		cfg := OracleConfig{WindowLen: 16}
		cands := ProfileCandidatesPacked(pt, cfg)
		want := SelectRefsPacked(pt, cands, cfg)
		for _, chunk := range streamChunks(16) {
			got, err := SelectRefsBlocks(pt.Blocks(chunk), pt.Addrs(), cands, cfg)
			if err != nil {
				t.Fatalf("%s chunk %d: %v", tr.Name(), chunk, err)
			}
			mustEqualSelections(t, got, want)
		}
	}
}

// TestBuildSelectiveBlocksFromDisk closes the full loop: encode to the
// on-disk format, run both oracle passes through the streaming decoder
// at small chunk sizes, compare against the in-memory pipeline.
func TestBuildSelectiveBlocksFromDisk(t *testing.T) {
	for _, tr := range differentialTraces() {
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatal(err)
		}
		cfg := OracleConfig{WindowLen: 16}
		want := BuildSelectivePacked(trace.Pack(tr), cfg)
		for _, chunk := range []int{1, 17, 256} {
			got, err := BuildSelectiveBlocks(func() (trace.BlockSource, error) {
				return trace.ReadBlocks(bytes.NewReader(buf.Bytes()), chunk)
			}, cfg)
			if err != nil {
				t.Fatalf("%s chunk %d: %v", tr.Name(), chunk, err)
			}
			mustEqualSelections(t, got, want)
		}
	}
}

// TestStreamDifferentialPrunePressure drives the streamed profile pass
// through repeated watermark prunes (tiny MaxCandidates), where any
// divergence in emission order across chunk boundaries would change
// which candidates are evicted.
func TestStreamDifferentialPrunePressure(t *testing.T) {
	tr := randomTrace(9, 800, 30)
	pt := trace.Pack(tr)
	cfg := OracleConfig{WindowLen: 32, MaxCandidates: 8}
	want := ProfileCandidatesPacked(pt, cfg)
	for _, chunk := range []int{1, 31, 33, 777} {
		got, err := ProfileCandidatesBlocks(pt.Blocks(chunk), cfg)
		if err != nil {
			t.Fatal(err)
		}
		mustEqualCandidates(t, got, want)
	}
}

// TestStreamDifferentialSchemes checks scheme filtering through the
// streamed pipeline.
func TestStreamDifferentialSchemes(t *testing.T) {
	tr := randomTrace(7, 500, 10)
	pt := trace.Pack(tr)
	for _, schemes := range [][]Scheme{{Occurrence}, {BackwardCount}} {
		cfg := OracleConfig{Schemes: schemes}
		want := BuildSelectivePacked(pt, cfg)
		got, err := BuildSelectiveBlocks(func() (trace.BlockSource, error) {
			return pt.Blocks(37), nil
		}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		mustEqualSelections(t, got, want)
	}
}

// TestOracleBlocksTruncatedSource surfaces decoder errors from either
// pass instead of returning a result built from a partial stream.
func TestOracleBlocksTruncatedSource(t *testing.T) {
	tr := randomTrace(3, 600, 8)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()/2]
	src, err := trace.ReadBlocks(bytes.NewReader(data), 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ProfileCandidatesBlocks(src, OracleConfig{}); err == nil {
		t.Error("profile over truncated stream should fail")
	}
	if _, err := BuildSelectiveBlocks(func() (trace.BlockSource, error) {
		return trace.ReadBlocks(bytes.NewReader(data), 64)
	}, OracleConfig{}); err == nil {
		t.Error("build over truncated stream should fail")
	}
}

func TestOracleBlocksEmptyTrace(t *testing.T) {
	pt := trace.Pack(trace.New("empty", 0))
	cands, err := ProfileCandidatesBlocks(pt.Blocks(8), OracleConfig{})
	if err != nil || len(cands) != 0 {
		t.Fatalf("empty profile: %v, %d candidates", err, len(cands))
	}
	sel, err := BuildSelectiveBlocks(func() (trace.BlockSource, error) {
		return pt.Blocks(8), nil
	}, OracleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= MaxSelectiveRefs; k++ {
		if len(sel.BySize[k]) != 0 {
			t.Errorf("empty trace produced size-%d assignments", k)
		}
	}
}
