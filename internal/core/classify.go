package core

import (
	"branchcorr/internal/bp"
	"branchcorr/internal/obs"
	"branchcorr/internal/sim"
	"branchcorr/internal/trace"
)

// PAClass is a per-address predictability class from section 4.1. A
// branch is classified by which class predictor achieves the highest
// accuracy for it — unless the ideal static predictor does at least as
// well, in which case the branch is left unclassified (ClassStatic).
type PAClass uint8

// The classes, in tie-breaking priority order (a branch equally well
// predicted by the loop and block predictors is a loop branch; repeating
// beats non-repeating on ties because it is the stronger claim).
const (
	ClassStatic PAClass = iota
	ClassLoop
	ClassRepeating
	ClassNonRepeating
	numPAClasses
)

// String implements fmt.Stringer.
func (c PAClass) String() string {
	switch c {
	case ClassStatic:
		return "ideal-static"
	case ClassLoop:
		return "loop"
	case ClassRepeating:
		return "repeating-pattern"
	case ClassNonRepeating:
		return "non-repeating-pattern"
	default:
		return "unknown"
	}
}

// PAClassification is the result of classifying one trace's branches by
// per-address predictability.
type PAClassification struct {
	// Class maps each static branch to its class.
	Class map[trace.Addr]PAClass
	// DynWeight is the dynamic execution weight per class.
	DynWeight [numPAClasses]int
	// Total is the trace's dynamic branch count.
	Total int
	// StaticHighBias is the dynamic weight of ClassStatic branches whose
	// bias exceeds 99% — the paper reports this share to show that most
	// unclassified branches are simply strongly biased.
	StaticHighBias int

	// Per-class predictor results, retained for the hypothetical
	// combiners (Table 3) and the Figure 8 categorization.
	Static *sim.Result // ideal static
	Loop   *sim.Result
	Block  *sim.Result
	IFPAs  *sim.Result
	Fixed  map[trace.Addr]bp.BestFixed
}

// Frac returns the dynamic fraction of branches in class c.
func (p *PAClassification) Frac(c PAClass) float64 {
	if p.Total == 0 {
		return 0
	}
	return float64(p.DynWeight[c]) / float64(p.Total)
}

// StaticHighBiasFrac returns, among ClassStatic dynamic weight, the share
// that is >99% biased.
func (p *PAClassification) StaticHighBiasFrac() float64 {
	if p.DynWeight[ClassStatic] == 0 {
		return 0
	}
	return float64(p.StaticHighBias) / float64(p.DynWeight[ClassStatic])
}

// RepeatingCorrect returns the repeating-pattern class's correct count
// for a branch: the better of the best fixed-length-pattern predictor and
// the block-pattern predictor, as in section 4.1.2.
func (p *PAClassification) RepeatingCorrect(pc trace.Addr) int {
	best := p.Block.Branch(pc).Correct
	if f, ok := p.Fixed[pc]; ok && f.Correct > best {
		best = f.Correct
	}
	return best
}

// PerAddressBestCorrect returns the best per-address-class correct count
// for a branch over all of section 4.1's predictors (loop, repeating,
// non-repeating), used as the per-address side of Figure 8.
func (p *PAClassification) PerAddressBestCorrect(pc trace.Addr) int {
	best := p.Loop.Branch(pc).Correct
	if c := p.RepeatingCorrect(pc); c > best {
		best = c
	}
	if c := p.IFPAs.Branch(pc).Correct; c > best {
		best = c
	}
	return best
}

// ClassifyConfig parameterizes per-address classification.
type ClassifyConfig struct {
	// IFPAsHistoryBits is the local history length of the non-repeating
	// class's interference-free PAs (default 16).
	IFPAsHistoryBits uint
	// HighBias is the bias threshold reported for unclassified branches
	// (default 0.99, the paper's ">99% biased").
	HighBias float64
	// Obs receives the classification's simulation counters and spans;
	// nil selects obs.Default(). The service threads a per-request
	// registry through here.
	Obs *obs.Registry
}

func (c ClassifyConfig) withDefaults() ClassifyConfig {
	if c.IFPAsHistoryBits == 0 {
		c.IFPAsHistoryBits = 16
	}
	if c.HighBias == 0 {
		c.HighBias = 0.99
	}
	return c
}

// ClassifyPerAddress runs all section 4.1 class predictors over the trace
// and assigns every static branch to a per-address predictability class,
// reproducing the method behind Figure 6.
func ClassifyPerAddress(t *trace.Trace, cfg ClassifyConfig) *PAClassification {
	cfg = cfg.withDefaults()
	stats := trace.Summarize(t)
	results := sim.Simulate(t, []bp.Predictor{
		bp.NewIdealStatic(stats),
		bp.NewLoop(),
		bp.NewBlock(),
		bp.NewIFPAs(cfg.IFPAsHistoryBits),
	}, sim.Options{Observer: cfg.Obs}).Results
	sweep := bp.NewFixedKSweep()
	for _, r := range t.Records() {
		sweep.Observe(r)
	}
	p := &PAClassification{
		Class:  make(map[trace.Addr]PAClass, len(stats.Sites)),
		Total:  t.Len(),
		Static: results[0],
		Loop:   results[1],
		Block:  results[2],
		IFPAs:  results[3],
		Fixed:  sweep.BestPerBranch(),
	}
	for pc, site := range stats.Sites {
		static := p.Static.Branch(pc).Correct
		loop := p.Loop.Branch(pc).Correct
		rep := p.RepeatingCorrect(pc)
		nonrep := p.IFPAs.Branch(pc).Correct

		class := ClassLoop
		best := loop
		if rep > best {
			class, best = ClassRepeating, rep
		}
		if nonrep > best {
			class, best = ClassNonRepeating, nonrep
		}
		if static >= best {
			class = ClassStatic
			if site.Bias() > cfg.HighBias {
				p.StaticHighBias += site.Count
			}
		}
		p.Class[pc] = class
		p.DynWeight[class] += site.Count
	}
	return p
}

// Category is a section 5 best-predictor category.
type Category uint8

// Categories for the Figure 7/8 distributions.
const (
	CatStatic Category = iota
	CatGlobal
	CatPerAddress
	numCategories
)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case CatStatic:
		return "ideal-static"
	case CatGlobal:
		return "global"
	case CatPerAddress:
		return "per-address"
	default:
		return "unknown"
	}
}

// CategorySplit is a dynamic-weighted distribution of branches over the
// three section 5 categories.
type CategorySplit struct {
	Weight         [numCategories]int
	Total          int
	StaticHighBias int // dynamic weight of >99%-biased CatStatic branches
	Category       map[trace.Addr]Category
}

// Frac returns the dynamic fraction of branches in category c.
func (s *CategorySplit) Frac(c Category) float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Weight[c]) / float64(s.Total)
}

// StaticHighBiasFrac returns the >99%-biased share of the static
// category's dynamic weight.
func (s *CategorySplit) StaticHighBiasFrac() float64 {
	if s.Weight[CatStatic] == 0 {
		return 0
	}
	return float64(s.StaticHighBias) / float64(s.Weight[CatStatic])
}

// SplitBest assigns every branch to the category whose correct count is
// highest; the static category wins ties against both others (the paper
// does not classify branches "predicted at least as accurately with an
// ideal static predictor"), and global wins ties against per-address.
// globalCorrect and perAddrCorrect give each side's best per-branch
// correct count; highBias is the bias threshold for the static share
// breakdown (pass 0.99 to match the paper).
func SplitBest(stats *trace.Stats, static *sim.Result,
	globalCorrect, perAddrCorrect func(trace.Addr) int, highBias float64) *CategorySplit {
	s := &CategorySplit{
		Total:    stats.Dynamic,
		Category: make(map[trace.Addr]Category, len(stats.Sites)),
	}
	for pc, site := range stats.Sites {
		st := static.Branch(pc).Correct
		g := globalCorrect(pc)
		p := perAddrCorrect(pc)
		cat := CatGlobal
		best := g
		if p > best {
			cat, best = CatPerAddress, p
		}
		if st >= best {
			cat = CatStatic
			if site.Bias() > highBias {
				s.StaticHighBias += site.Count
			}
		}
		s.Category[pc] = cat
		s.Weight[cat] += site.Count
	}
	return s
}
