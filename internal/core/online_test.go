package core

import (
	"testing"

	"branchcorr/internal/bp"
	"branchcorr/internal/sim"
	"branchcorr/internal/trace"
)

func TestOnlineSelectiveFindsCorrelation(t *testing.T) {
	tr := correlatedPair(12000, 2)
	p := NewOnlineSelective(1, 16, 256)
	res := sim.RunOne(tr, p)
	if acc := res.Branch(0x200).Accuracy(); acc < 0.95 {
		t.Errorf("online selective on correlated branch = %.3f, want >= 0.95", acc)
	}
}

func TestOnlineSelectiveAntiCorrelation(t *testing.T) {
	// X is the INVERSE of Y: the agreement score saturates negative and
	// |score| adoption must still exploit it.
	tr := trace.New("anti", 0)
	rng := lcg(23)
	for i := 0; i < 12000; i++ {
		y := rng.bit()
		tr.Append(rec(0x100, y))
		tr.Append(rec(0x200, !y))
	}
	p := NewOnlineSelective(1, 16, 256)
	res := sim.RunOne(tr, p)
	if acc := res.Branch(0x200).Accuracy(); acc < 0.95 {
		t.Errorf("online selective on anti-correlated branch = %.3f, want >= 0.95", acc)
	}
}

func TestOnlineSelectiveTwoRefs(t *testing.T) {
	// X = Y AND Z: needs both refs adopted.
	tr := trace.New("and", 0)
	ry, rz := lcg(31), lcg(32)
	for i := 0; i < 20000; i++ {
		y, z := ry.bit(), rz.bit()
		tr.Append(rec(0x100, y))
		tr.Append(rec(0x104, z))
		tr.Append(rec(0x200, y && z))
	}
	p := NewOnlineSelective(2, 16, 256)
	res := sim.RunOne(tr, p)
	if acc := res.Branch(0x200).Accuracy(); acc < 0.93 {
		t.Errorf("online 2-ref selective on AND branch = %.3f, want >= 0.93", acc)
	}
}

func TestOnlineSelectiveBiasedFallback(t *testing.T) {
	// A heavily biased branch with no usable correlation must fall back
	// to its bias counter and stay near its bias.
	tr := trace.New("bias", 0)
	rng := lcg(41)
	for i := 0; i < 8000; i++ {
		tr.Append(rec(0x300, rng.bit())) // noise branch
		tr.Append(rec(0x400, i%20 != 19))
	}
	p := NewOnlineSelective(2, 16, 256)
	res := sim.RunOne(tr, p)
	if acc := res.Branch(0x400).Accuracy(); acc < 0.93 {
		t.Errorf("online selective on biased branch = %.3f, want >= 0.93", acc)
	}
}

func TestOnlineSelectiveDeterministic(t *testing.T) {
	tr := correlatedPair(4000, 3)
	a := sim.RunOne(tr, NewOnlineSelective(2, 16, 128))
	b := sim.RunOne(tr, NewOnlineSelective(2, 16, 128))
	if a.Correct != b.Correct {
		t.Errorf("nondeterministic: %d vs %d", a.Correct, b.Correct)
	}
}

func TestOnlineSelectiveVsOracle(t *testing.T) {
	// On a cleanly correlated trace the online predictor should land
	// within a few points of the oracle-selected one.
	tr := correlatedPair(20000, 2)
	sels := BuildSelective(tr, OracleConfig{WindowLen: 16})
	rs := sim.Run(tr,
		NewSelective("oracle", 16, sels.BySize[1]),
		NewOnlineSelective(1, 16, 256),
	)
	oracleAcc, onlineAcc := rs[0].Accuracy(), rs[1].Accuracy()
	if onlineAcc < oracleAcc-0.05 {
		t.Errorf("online (%.4f) too far below oracle (%.4f)", onlineAcc, oracleAcc)
	}
}

func TestOnlineSelectivePanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewOnlineSelective(0, 16, 256) },
		func() { NewOnlineSelective(4, 16, 256) },
		func() { NewOnlineSelective(2, 16, 8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
	if NewOnlineSelective(2, 16, 256).Name() != "online-selective(2,16)" {
		t.Error("name wrong")
	}
}

// The online predictor must also work as a drop-in bp.Predictor inside a
// hybrid.
func TestOnlineSelectiveInHybrid(t *testing.T) {
	tr := correlatedPair(8000, 2)
	h := bp.NewHybrid(NewOnlineSelective(1, 16, 256), bp.NewBimodal(12), 10)
	res := sim.RunOne(tr, h)
	if acc := res.Branch(0x200).Accuracy(); acc < 0.9 {
		t.Errorf("hybrid with online selective on correlated branch = %.4f", acc)
	}
}
