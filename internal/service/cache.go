package service

import (
	"sync"

	"branchcorr/internal/obs"
)

// payloadCache memoizes canonical response payloads by request identity.
// It is a single-flight cache: concurrent requests for the same key
// share one computation, and a completed entry replays its exact bytes —
// which is what makes a cache hit trivially byte-identical to the
// computation it replaced. Errors are never cached (the failed entry is
// removed before waiters wake, so the next request retries), and
// completed entries are evicted FIFO once the cache exceeds its
// capacity.
type payloadCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*cacheEntry
	order   []string // completed keys, oldest first

	hits, misses *obs.Counter
}

type cacheEntry struct {
	done  chan struct{}
	bytes []byte
	err   error
}

// newPayloadCache builds a cache holding at most capacity completed
// payloads, counting service.cache.hits / service.cache.misses into reg.
func newPayloadCache(capacity int, reg *obs.Registry) *payloadCache {
	return &payloadCache{
		cap:     capacity,
		entries: make(map[string]*cacheEntry),
		hits:    reg.Counter("service.cache.hits"),
		misses:  reg.Counter("service.cache.misses"),
	}
}

// do returns the payload for key, computing it at most once across
// concurrent callers. The compute function runs without the cache lock
// held.
func (c *payloadCache) do(key string, compute func() ([]byte, error)) ([]byte, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		<-e.done
		if e.err == nil {
			c.hits.Inc()
		}
		return e.bytes, e.err
	}
	e := &cacheEntry{done: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()
	c.misses.Inc()

	e.bytes, e.err = compute()

	c.mu.Lock()
	if e.err != nil {
		// Failed flights are not cached: drop the entry so the next
		// request recomputes. Callers already waiting on this flight
		// share its error.
		delete(c.entries, key)
	} else {
		c.order = append(c.order, key)
		for len(c.order) > c.cap {
			delete(c.entries, c.order[0])
			c.order = c.order[1:]
		}
	}
	c.mu.Unlock()
	close(e.done)
	return e.bytes, e.err
}
