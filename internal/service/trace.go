package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	v1 "branchcorr/internal/api/v1"
	"branchcorr/internal/corpus"
	"branchcorr/internal/trace"
	"branchcorr/internal/workloads"
)

// resolvedTrace is a request's trace after resolution: the content
// address it is served under plus the decoded trace (with its Packed
// memo seeded, so repeated requests skip the packing pass).
type resolvedTrace struct {
	key string
	tr  *trace.Trace
}

func (rt resolvedTrace) info() v1.TraceInfo {
	return v1.NewTraceInfo(rt.key, rt.tr.Packed())
}

// traceCache is a small FIFO cache of decoded traces, keyed by content
// address. Concurrent misses may decode the same trace twice; that is
// benign (both decode to equal traces) and keeps the cache lock off the
// decode path.
type traceCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*trace.Trace
	order   []string
}

func newTraceCache(capacity int) *traceCache {
	return &traceCache{cap: capacity, entries: make(map[string]*trace.Trace)}
}

func (c *traceCache) get(key string) (*trace.Trace, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	tr, ok := c.entries[key]
	return tr, ok
}

func (c *traceCache) put(key string, tr *trace.Trace) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return
	}
	c.entries[key] = tr
	c.order = append(c.order, key)
	for len(c.order) > c.cap {
		delete(c.entries, c.order[0])
		c.order = c.order[1:]
	}
}

// resolve turns a wire trace ref into a decoded trace: uploaded traces
// by content address, workload traces by (name, length, generator
// revision) through the corpus store, with the in-memory cache in
// front of both. Resolution never touches the request's metrics
// registry — corpus and cache traffic depends on what earlier requests
// did, so it may only show up in the process registry.
func (s *Server) resolve(ref v1.TraceRef) (resolvedTrace, error) {
	if err := ref.Validate(); err != nil {
		return resolvedTrace{}, badRequest(err)
	}

	if ref.Key != "" {
		if tr, ok := s.traces.get(ref.Key); ok {
			return resolvedTrace{key: ref.Key, tr: tr}, nil
		}
		if !s.store.Has(ref.Key) {
			return resolvedTrace{}, notFound(fmt.Errorf("trace %q not in the corpus", ref.Key))
		}
		tr, err := s.store.LoadTrace(ref.Key)
		if err != nil {
			return resolvedTrace{}, internalErr(err)
		}
		s.traces.put(ref.Key, tr)
		return resolvedTrace{key: ref.Key, tr: tr}, nil
	}

	w, err := workloads.ByName(ref.Workload)
	if err != nil {
		return resolvedTrace{}, badRequest(err)
	}
	n := ref.N
	if n == 0 {
		n = s.cfg.DefaultTraceN
	}
	if n > s.cfg.MaxTraceN {
		return resolvedTrace{}, tooLarge(fmt.Errorf("trace length %d exceeds the service limit %d", n, s.cfg.MaxTraceN))
	}
	key := corpus.Key(w.Name(), n, workloads.Revision)
	if tr, ok := s.traces.get(key); ok {
		return resolvedTrace{key: key, tr: tr}, nil
	}
	tr, err := s.store.GetTrace(key, func() *trace.Trace { return w.Generate(n) })
	if err != nil {
		return resolvedTrace{}, internalErr(err)
	}
	s.traces.put(key, tr)
	return resolvedTrace{key: key, tr: tr}, nil
}

// decodeUpload sniffs an uploaded trace body — record-stream BTR1 or
// columnar BPK1 — and returns its packed view plus its content address:
// the digest of the canonical BPK1 encoding, so the same trace uploaded
// in either format (or with any chunking) lands on one key.
func decodeUpload(body []byte) (*trace.Packed, string, error) {
	if len(body) < 4 {
		return nil, "", badRequest(fmt.Errorf("trace body too short (%d bytes)", len(body)))
	}
	var pt *trace.Packed
	switch string(body[:4]) {
	case "BTR1":
		tr, err := trace.Read(bytes.NewReader(body))
		if err != nil {
			return nil, "", badRequest(err)
		}
		pt = tr.Packed()
	case "BPK1":
		var err error
		pt, _, err = corpus.Decode(bytes.NewReader(body))
		if err != nil {
			return nil, "", badRequest(err)
		}
	default:
		return nil, "", badRequest(fmt.Errorf("unrecognized trace magic %q (want BTR1 or BPK1)", body[:4]))
	}
	var canon bytes.Buffer
	if err := corpus.Encode(&canon, pt, corpus.DefaultChunkLen); err != nil {
		return nil, "", internalErr(err)
	}
	sum := sha256.Sum256(canon.Bytes())
	return pt, hex.EncodeToString(sum[:]), nil
}
