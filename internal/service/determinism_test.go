package service

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	v1 "branchcorr/internal/api/v1"
)

// mixedRequests is the differential workload: every compute endpoint,
// several traces, overlapping duplicates (so cache single-flight is
// exercised mid-burst), and parameter spellings that canonicalize onto
// each other.
func mixedRequests() []struct{ path, body string } {
	var reqs []struct{ path, body string }
	add := func(path, body string) {
		reqs = append(reqs, struct{ path, body string }{path, body})
	}
	for _, wl := range []string{"gcc", "compress", "xlisp"} {
		add("/v1/simulate", fmt.Sprintf(`{"trace":{"workload":%q},"specs":["gshare:8","bimodal:8"]}`, wl))
		add("/v1/simulate", fmt.Sprintf(`{"trace":{"workload":%q},"specs":["gshare:8","bimodal:8"]}`, wl)) // dup
		add("/v1/simulate", fmt.Sprintf(`{"trace":{"workload":%q},"specs":["gshare:10"],"bucket_size":500}`, wl))
		add("/v1/sweep", fmt.Sprintf(`{"trace":{"workload":%q},"grid":{"family":"gshare-hist","hist":[4,6,8]}}`, wl))
		add("/v1/classify", fmt.Sprintf(`{"trace":{"workload":%q}}`, wl))
	}
	add("/v1/oracle", `{"trace":{"workload":"gcc"},"window_len":8,"top_k":8}`)
	add("/v1/oracle", `{"trace":{"workload":"gcc"},"window_len":8,"top_k":8,"stage":"profile"}`)
	add("/v1/sweep", `{"trace":{"workload":"compress"},"grid":{"family":"specs","specs":["gshare:6","pas:4,4,6"]}}`)
	add("/v1/simulate", `{"trace":{"workload":"xlisp"},"specs":["gshare:8"],"per_branch":true}`)
	return reqs
}

func issue(t *testing.T, ts *httptest.Server, path, body string) []byte {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s %s: status %d, body %s", path, body, resp.StatusCode, buf.Bytes())
	}
	return buf.Bytes()
}

// TestParallelLoadDifferential is the service's determinism pin: the
// same mixed request set served (a) sequentially at worker budget 1 and
// (b) fully concurrently at worker budget 8 — each cold-cache then
// warm-cache — produces byte-identical payloads in all four runs. Run
// under -race this also sweeps the scheduler, cache single-flight, and
// registry merges for data races.
func TestParallelLoadDifferential(t *testing.T) {
	reqs := mixedRequests()

	_, seqTS := newTestServer(t, func(c *Config) { c.Workers = 1 })
	_, parTS := newTestServer(t, func(c *Config) { c.Workers = 8; c.SimParallel = 2 })

	runSequential := func() [][]byte {
		out := make([][]byte, len(reqs))
		for i, r := range reqs {
			out[i] = issue(t, seqTS, r.path, r.body)
		}
		return out
	}
	runParallel := func() [][]byte {
		out := make([][]byte, len(reqs))
		var wg sync.WaitGroup
		for i, r := range reqs {
			wg.Add(1)
			go func() {
				defer wg.Done()
				out[i] = issue(t, parTS, r.path, r.body)
			}()
		}
		wg.Wait()
		return out
	}

	seqCold := runSequential()
	seqWarm := runSequential()
	parCold := runParallel()
	parWarm := runParallel()

	for i, r := range reqs {
		want := seqCold[i]
		for name, got := range map[string][]byte{
			"sequential-warm": seqWarm[i],
			"parallel-cold":   parCold[i],
			"parallel-warm":   parWarm[i],
		} {
			if !bytes.Equal(want, got) {
				t.Errorf("%s %s: %s payload deviates from sequential-cold\nwant: %s\ngot:  %s",
					r.path, r.body, name, want, got)
			}
		}
	}
}

// TestCacheCanonicalization is the cache-key satellite: requests that
// canonicalize onto each other (spec grammar round-trip, explicit
// defaults) hit one cache entry, while genuinely different options do
// not.
func TestCacheCanonicalization(t *testing.T) {
	s, ts := newTestServer(t, nil)
	hits := func() int64 { return s.reg.Counter("service.cache.hits").Value() }
	misses := func() int64 { return s.reg.Counter("service.cache.misses").Value() }

	// Round 1: colon grammar. Cold miss.
	b1 := issue(t, ts, "/v1/simulate", `{"trace":{"workload":"gcc"},"specs":["gshare:10"]}`)
	if hits() != 0 || misses() != 1 {
		t.Fatalf("after cold request: hits=%d misses=%d, want 0/1", hits(), misses())
	}

	// Round 2: an equivalent grammar spelling ("010" parses to the same
	// predictor). Both canonicalize to the parsed predictor's name, so
	// they share the entry.
	resp := mustDecode[v1.SimulateResponse](t, b1)
	if resp.Results[0].Spec != "gshare(10)" {
		t.Errorf("reported spec %q, want the canonical display name", resp.Results[0].Spec)
	}
	b2 := issue(t, ts, "/v1/simulate", `{"trace":{"workload":"gcc"},"specs":["gshare:010"]}`)
	if hits() != 1 || misses() != 1 {
		t.Errorf("equivalent respelling: hits=%d misses=%d, want 1/1", hits(), misses())
	}
	if !bytes.Equal(b1, b2) {
		t.Errorf("equivalent respelling returned different bytes:\n%s\n%s", b1, b2)
	}

	// The trace ref's spelling canonicalizes too: naming the default
	// length explicitly resolves to the same content address.
	b3 := issue(t, ts, "/v1/simulate", fmt.Sprintf(`{"trace":{"workload":"gcc","n":%d},"specs":["gshare:10"]}`, testN))
	if hits() != 2 {
		t.Errorf("explicit default length: hits=%d, want 2", hits())
	}
	if !bytes.Equal(b1, b3) {
		t.Error("explicit default length returned different bytes")
	}

	// Oracle: explicit defaults share the default entry.
	issue(t, ts, "/v1/oracle", `{"trace":{"workload":"gcc"},"window_len":8}`)
	preMisses := misses()
	issue(t, ts, "/v1/oracle", `{"trace":{"workload":"gcc"},"window_len":8,"top_k":16,"max_candidates":2048,"stage":"full","schemes":["back","occ"]}`)
	if misses() != preMisses {
		t.Errorf("oracle explicit defaults recomputed: misses %d -> %d", preMisses, misses())
	}

	// Non-equivalent options do not collide.
	preMisses = misses()
	issue(t, ts, "/v1/simulate", `{"trace":{"workload":"gcc"},"specs":["gshare:10"],"bucket_size":500}`)
	issue(t, ts, "/v1/simulate", `{"trace":{"workload":"gcc"},"specs":["gshare:10"],"per_branch":true}`)
	issue(t, ts, "/v1/oracle", `{"trace":{"workload":"gcc"},"window_len":8,"schemes":["occ"]}`)
	if misses() != preMisses+3 {
		t.Errorf("non-equivalent options: misses %d -> %d, want +3", preMisses, misses())
	}
}

// TestCacheEviction pins FIFO eviction: with a one-entry cache, an
// alternating request pair never hits.
func TestCacheEviction(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) { c.CacheEntries = 1 })
	a := `{"trace":{"workload":"gcc"},"specs":["gshare:8"]}`
	b := `{"trace":{"workload":"gcc"},"specs":["gshare:9"]}`
	issue(t, ts, "/v1/simulate", a)
	issue(t, ts, "/v1/simulate", b) // evicts a
	issue(t, ts, "/v1/simulate", a) // must recompute
	if hits := s.reg.Counter("service.cache.hits").Value(); hits != 0 {
		t.Errorf("hits = %d with a capacity-1 cache and alternating keys, want 0", hits)
	}
	if misses := s.reg.Counter("service.cache.misses").Value(); misses != 3 {
		t.Errorf("misses = %d, want 3", misses)
	}
}
