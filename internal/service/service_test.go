package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	v1 "branchcorr/internal/api/v1"
	"branchcorr/internal/bp"
	"branchcorr/internal/core"
	"branchcorr/internal/obs"
	"branchcorr/internal/sim"
	"branchcorr/internal/workloads"
)

// testN keeps test traces small enough that every endpoint (the oracle
// included) runs in milliseconds.
const testN = 1500

// newTestServer boots a service on a fresh corpus dir and registry,
// returning the server (for registry access) and its HTTP front.
func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{
		CorpusDir:     t.TempDir(),
		DefaultTraceN: testN,
		MaxTraceN:     4 * testN,
		Registry:      obs.New(),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends one request and returns the status and raw payload bytes.
func post(t *testing.T, ts *httptest.Server, path string, req any) (int, []byte) {
	t.Helper()
	body, err := v1.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

func mustDecode[T any](t *testing.T, b []byte) T {
	t.Helper()
	var v T
	if err := v1.DecodeStrict(bytes.NewReader(b), &v); err != nil {
		t.Fatalf("decoding response %q: %v", b, err)
	}
	return v
}

// TestSimulateEndpoint checks the simulate path against a direct engine
// run: same counts, canonical spec names, trace info filled in.
func TestSimulateEndpoint(t *testing.T) {
	_, ts := newTestServer(t, nil)
	status, b := post(t, ts, "/v1/simulate", v1.SimulateRequest{
		Trace: v1.TraceRef{Workload: "gcc"},
		Specs: []string{"gshare:10", "bimodal:10"},
	})
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, b)
	}
	resp := mustDecode[v1.SimulateResponse](t, b)
	if resp.Trace.Branches != testN || resp.Trace.Name != "gcc" || resp.Trace.Key == "" {
		t.Errorf("trace info = %+v", resp.Trace)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(resp.Results))
	}

	w, err := workloads.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	tr := w.Generate(testN)
	preds, err := bp.ParseAll([]string{"gshare:10", "bimodal:10"}, bp.Env{})
	if err != nil {
		t.Fatal(err)
	}
	want := sim.Simulate(tr, preds, sim.Options{})
	for i, res := range resp.Results {
		if res.Spec != preds[i].Name() {
			t.Errorf("result %d spec = %q, want canonical %q", i, res.Spec, preds[i].Name())
		}
		if res.Correct != int64(want.Results[i].Correct) || res.Total != int64(testN) {
			t.Errorf("result %d = %d/%d, want %d/%d", i, res.Correct, res.Total, want.Results[i].Correct, testN)
		}
	}
	if len(resp.Metrics.Counters) == 0 {
		t.Error("response metrics empty; want the request's engine counters")
	}
	if len(resp.Metrics.Histograms) != 0 {
		t.Error("response metrics include histograms; durations must stay out of payloads")
	}
}

// TestSimulateOptions covers the timeline and per-branch flags.
func TestSimulateOptions(t *testing.T) {
	_, ts := newTestServer(t, nil)
	status, b := post(t, ts, "/v1/simulate", v1.SimulateRequest{
		Trace:      v1.TraceRef{Workload: "gcc"},
		Specs:      []string{"gshare:10"},
		BucketSize: 500,
		PerBranch:  true,
	})
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, b)
	}
	resp := mustDecode[v1.SimulateResponse](t, b)
	r := resp.Results[0]
	if len(r.Timeline) != 3 { // ceil(1500/500)
		t.Errorf("timeline has %d buckets, want 3", len(r.Timeline))
	}
	if len(r.PerBranch) == 0 {
		t.Fatal("per-branch accounting missing")
	}
	var sum int64
	for _, acc := range r.PerBranch {
		sum += acc.Total
	}
	if sum != int64(testN) {
		t.Errorf("per-branch totals sum to %d, want %d", sum, testN)
	}
}

// TestSweepEndpoint checks both an axis family and the specs family
// against direct engine runs.
func TestSweepEndpoint(t *testing.T) {
	_, ts := newTestServer(t, nil)
	status, b := post(t, ts, "/v1/sweep", v1.SweepRequest{
		Trace: v1.TraceRef{Workload: "gcc"},
		Grid:  v1.GridSpec{Family: "gshare-hist", Hist: []uint{4, 8, 12}},
	})
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, b)
	}
	resp := mustDecode[v1.SweepResponse](t, b)

	w, _ := workloads.ByName("gcc")
	tr := w.Generate(testN)
	want := sim.SimulateSweep(tr, bp.NewGshareSweep([]uint{4, 8, 12}), sim.Options{})
	if resp.Grid != want.Grid || resp.Total != int64(want.Total) {
		t.Errorf("grid/total = %s/%d, want %s/%d", resp.Grid, resp.Total, want.Grid, want.Total)
	}
	if len(resp.Configs) != len(want.Configs) {
		t.Fatalf("got %d configs, want %d", len(resp.Configs), len(want.Configs))
	}
	for i, c := range resp.Configs {
		if c.Name != want.Configs[i] || c.Correct != want.Correct[i] {
			t.Errorf("config %d = %+v, want %s/%d", i, c, want.Configs[i], want.Correct[i])
		}
	}

	status, b = post(t, ts, "/v1/sweep", v1.SweepRequest{
		Trace: v1.TraceRef{Workload: "gcc"},
		Grid:  v1.GridSpec{Family: "specs", Specs: []string{"gshare:6", "bimodal:8"}},
	})
	if status != http.StatusOK {
		t.Fatalf("specs family status %d, body %s", status, b)
	}
	sr := mustDecode[v1.SweepResponse](t, b)
	if len(sr.Configs) != 2 || !strings.HasPrefix(sr.Grid, "specs(") {
		t.Errorf("specs sweep = grid %q with %d configs", sr.Grid, len(sr.Configs))
	}
}

// TestOracleEndpoint checks both stages against direct oracle runs.
func TestOracleEndpoint(t *testing.T) {
	_, ts := newTestServer(t, nil)
	w, _ := workloads.ByName("gcc")
	tr := w.Generate(testN)

	status, b := post(t, ts, "/v1/oracle", v1.OracleRequest{
		Trace: v1.TraceRef{Workload: "gcc"},
	})
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, b)
	}
	resp := mustDecode[v1.OracleResponse](t, b)
	if len(resp.Sizes) != core.MaxSelectiveRefs || len(resp.Candidates) != 0 {
		t.Fatalf("full run: %d sizes, %d candidate beams", len(resp.Sizes), len(resp.Candidates))
	}
	want := core.Oracle(tr, core.OracleOptions{})
	for _, a := range resp.Sizes {
		if len(a.Branches) != len(want.BySize[a.Size]) {
			t.Errorf("size %d has %d branches, want %d", a.Size, len(a.Branches), len(want.BySize[a.Size]))
		}
	}

	status, b = post(t, ts, "/v1/oracle", v1.OracleRequest{
		Trace: v1.TraceRef{Workload: "gcc"},
		Stage: "profile",
	})
	if status != http.StatusOK {
		t.Fatalf("profile status %d, body %s", status, b)
	}
	prof := mustDecode[v1.OracleResponse](t, b)
	wantProf := core.Oracle(tr, core.OracleOptions{Stage: core.StageProfile})
	if len(prof.Candidates) != len(wantProf.Candidates) || len(prof.Sizes) != 0 {
		t.Errorf("profile run: %d beams (want %d), %d sizes", len(prof.Candidates), len(wantProf.Candidates), len(prof.Sizes))
	}
}

// TestClassifyEndpoint checks the classification payload against a
// direct run.
func TestClassifyEndpoint(t *testing.T) {
	_, ts := newTestServer(t, nil)
	status, b := post(t, ts, "/v1/classify", v1.ClassifyRequest{
		Trace: v1.TraceRef{Workload: "gcc"},
	})
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, b)
	}
	resp := mustDecode[v1.ClassifyResponse](t, b)

	w, _ := workloads.ByName("gcc")
	p := core.ClassifyPerAddress(w.Generate(testN), core.ClassifyConfig{})
	wantShares := v1.NewClassShares(p)
	if len(resp.Classes) != len(wantShares) {
		t.Fatalf("got %d classes, want %d", len(resp.Classes), len(wantShares))
	}
	for i, c := range resp.Classes {
		if c != wantShares[i] {
			t.Errorf("class %d = %+v, want %+v", i, c, wantShares[i])
		}
	}
	if resp.StaticHighBiasFrac != p.StaticHighBiasFrac() {
		t.Errorf("static high-bias frac = %g, want %g", resp.StaticHighBiasFrac, p.StaticHighBiasFrac())
	}
}

// TestUploadDedupe pins content addressing: the same trace uploaded as
// BTR1 and as BPK1 (and twice) lands on one key with byte-identical
// responses, and the key is then usable as a trace ref.
func TestUploadDedupe(t *testing.T) {
	s, ts := newTestServer(t, nil)
	w, _ := workloads.ByName("xlisp")
	tr := w.Generate(800)

	var btr bytes.Buffer
	if err := tr.Write(&btr); err != nil {
		t.Fatal(err)
	}
	upload := func(body []byte) (int, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/traces", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, buf.Bytes()
	}

	status, first := upload(btr.Bytes())
	if status != http.StatusOK {
		t.Fatalf("upload status %d, body %s", status, first)
	}
	up := mustDecode[v1.UploadResponse](t, first)
	if up.Branches != 800 || up.Key == "" {
		t.Fatalf("upload response %+v", up)
	}

	// Re-upload: identical response, no second store entry.
	status, second := upload(btr.Bytes())
	if status != http.StatusOK || !bytes.Equal(first, second) {
		t.Errorf("re-upload: status %d, payload diverged:\n%s\n%s", status, first, second)
	}

	// The BPK1 canonical form maps to the same key.
	pt, key, err := decodeUpload(btr.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if key != up.Key {
		t.Errorf("decodeUpload key %q != wire key %q", key, up.Key)
	}
	if err := s.store.PutPacked("tmp-reencode", pt); err != nil {
		t.Fatal(err)
	}
	bpkBytes, err := os.ReadFile(s.store.Path("tmp-reencode"))
	if err != nil {
		t.Fatal(err)
	}
	status, third := upload(bpkBytes)
	if status != http.StatusOK || !bytes.Equal(first, third) {
		t.Errorf("BPK1 upload: status %d, payload diverged from BTR1 upload", status)
	}

	// The key resolves as a trace ref.
	status, b := post(t, ts, "/v1/simulate", v1.SimulateRequest{
		Trace: v1.TraceRef{Key: up.Key},
		Specs: []string{"bimodal:8"},
	})
	if status != http.StatusOK {
		t.Fatalf("simulate over uploaded trace: status %d, body %s", status, b)
	}
	sr := mustDecode[v1.SimulateResponse](t, b)
	if sr.Trace.Key != up.Key || sr.Trace.Branches != 800 {
		t.Errorf("uploaded-trace info = %+v", sr.Trace)
	}

	// Garbage magic is rejected.
	if status, _ := upload([]byte("nope")); status != http.StatusBadRequest {
		t.Errorf("bad magic: status %d, want 400", status)
	}
}

// TestUploadTooLarge pins the upload size gate.
func TestUploadTooLarge(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.MaxUploadBytes = 128 })
	body := make([]byte, 256)
	copy(body, "BTR1")
	resp, err := http.Post(ts.URL+"/v1/traces", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("status %d, want 413", resp.StatusCode)
	}
	var er v1.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.Error.Code != "too-large" {
		t.Errorf("code %q, want too-large", er.Error.Code)
	}
}

// TestErrorMapping covers the wire error codes end to end.
func TestErrorMapping(t *testing.T) {
	_, ts := newTestServer(t, nil)
	cases := []struct {
		name   string
		path   string
		body   string
		status int
		code   string
	}{
		{"unknown field", "/v1/simulate", `{"trace":{"workload":"gcc"},"specs":["gshare:8"],"bogus":1}`, 400, "bad-request"},
		{"trailing data", "/v1/simulate", `{"trace":{"workload":"gcc"},"specs":["gshare:8"]}{}`, 400, "bad-request"},
		{"empty trace ref", "/v1/simulate", `{"specs":["gshare:8"]}`, 400, "bad-request"},
		{"unknown workload", "/v1/simulate", `{"trace":{"workload":"nope"},"specs":["gshare:8"]}`, 400, "bad-request"},
		{"unknown predictor", "/v1/simulate", `{"trace":{"workload":"gcc"},"specs":["wizard:8"]}`, 400, "unknown-name"},
		{"bad param", "/v1/simulate", `{"trace":{"workload":"gcc"},"specs":["gshare:zap"]}`, 400, "bad-param"},
		{"missing trace", "/v1/simulate", `{"trace":{"key":"` + strings.Repeat("feed", 16) + `"},"specs":["gshare:8"]}`, 404, "not-found"},
		{"malformed key", "/v1/simulate", `{"trace":{"key":"feedfeed"},"specs":["gshare:8"]}`, 400, "bad-request"},
		{"traversal key", "/v1/simulate", `{"trace":{"key":"../../../../etc/passwd"},"specs":["gshare:8"]}`, 400, "bad-request"},
		{"oversized trace", "/v1/simulate", `{"trace":{"workload":"gcc","n":999999999},"specs":["gshare:8"]}`, 413, "too-large"},
		{"unknown grid family", "/v1/sweep", `{"trace":{"workload":"gcc"},"grid":{"family":"nope"}}`, 400, "bad-request"},
		{"empty grid axis", "/v1/sweep", `{"trace":{"workload":"gcc"},"grid":{"family":"gshare-hist"}}`, 400, "bad-request"},
		{"grid guard panic", "/v1/sweep", `{"trace":{"workload":"gcc"},"grid":{"family":"gshare-hist","hist":[60]}}`, 400, "bad-param"},
		{"oracle topk", "/v1/oracle", `{"trace":{"workload":"gcc"},"top_k":33}`, 400, "bad-request"},
		{"oracle stage", "/v1/oracle", `{"trace":{"workload":"gcc"},"stage":"select"}`, 400, "bad-request"},
		{"oracle scheme", "/v1/oracle", `{"trace":{"workload":"gcc"},"schemes":["sideways"]}`, 400, "bad-request"},
		{"classify bias", "/v1/classify", `{"trace":{"workload":"gcc"},"high_bias":1.5}`, 400, "bad-request"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+c.path, "application/json", strings.NewReader(c.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var er v1.ErrorResponse
			if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != c.status || er.Error.Code != c.code {
				t.Errorf("got %d/%q (%s), want %d/%q", resp.StatusCode, er.Error.Code, er.Error.Message, c.status, c.code)
			}
		})
	}
}

// TestComputeDetachedFromCaller pins the single-flight context fix: a
// flight started by an already-canceled request still completes, so
// waiters coalesced on the key never inherit the first caller's abort.
func TestComputeDetachedFromCaller(t *testing.T) {
	s, _ := newTestServer(t, nil)
	rt, err := s.resolve(v1.TraceRef{Workload: "gcc"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client is already gone when the flight starts
	b, err := s.compute(ctx, "simulate", rt, "test|detached", func(reg *obs.Registry) (any, error) {
		return map[string]string{"ok": "yes"}, nil
	})
	if err != nil {
		t.Fatalf("canceled caller poisoned the flight: %v", err)
	}
	if len(b) == 0 {
		t.Fatal("empty payload")
	}
}

// TestAdmitCanceledCode checks a client abort while queued maps to the
// canceled wire code, not internal.
func TestAdmitCanceledCode(t *testing.T) {
	s, _ := newTestServer(t, func(c *Config) { c.Workers = 1 })
	s.sem <- struct{}{} // occupy the only slot
	defer func() { <-s.sem }()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.admit(ctx)
	var re *reqError
	if !errors.As(err, &re) || re.code != "canceled" {
		t.Fatalf("admit under canceled ctx = %v, want canceled code", err)
	}
	if httpStatus("canceled") != statusClientClosedRequest {
		t.Errorf("canceled maps to %d, want %d", httpStatus("canceled"), statusClientClosedRequest)
	}
}

// TestNegativeConfigClamped pins withDefaults clamping: negative
// budgets and capacities select the defaults instead of panicking in
// make(chan) or the cache eviction loop.
func TestNegativeConfigClamped(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		c.Workers = -1
		c.SimParallel = -2
		c.CacheEntries = -3
		c.TraceEntries = -4
		c.MaxUploadBytes = -5
	})
	for i := 0; i < 3; i++ { // exercise cache puts past any tiny cap
		status, b := post(t, ts, "/v1/simulate", v1.SimulateRequest{
			Trace: v1.TraceRef{Workload: "gcc"},
			Specs: []string{fmt.Sprintf("gshare:%d", 6+i)},
		})
		if status != http.StatusOK {
			t.Fatalf("status %d, body %s", status, b)
		}
	}
}

// TestHealthAndMetrics covers the two GET endpoints.
func TestHealthAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}

	// Drive one request so the process registry has content.
	post(t, ts, "/v1/simulate", v1.SimulateRequest{Trace: v1.TraceRef{Workload: "gcc"}, Specs: []string{"gshare:8"}})
	mresp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(mresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["service.requests.simulate"] < 1 {
		t.Errorf("process metrics missing request counters: %v", snap.Counters)
	}
	// The request's engine metrics were merged into the process registry.
	if snap.Counters["sim.predictions"] == 0 && snap.Counters["sim.records"] == 0 {
		found := false
		for name := range snap.Counters {
			if strings.HasPrefix(name, "sim.") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no sim.* counters merged into the process registry: %v", snap.Counters)
		}
	}
}
