// Package service is bpsimd's engine room: an HTTP/JSON simulation
// service over the repo's trace, simulation, oracle, and classification
// engines, speaking the versioned api/v1 wire schema.
//
// The contract is determinism: a request's payload bytes depend only on
// the request and the trace it names — never on service concurrency,
// scheduling, or cache state. Three mechanisms carry that:
//
//   - Engines already guarantee parallelism-invariant results, so the
//     server may run them at any worker budget.
//   - Response metrics are each request's own registry (counters and
//     gauges only — histograms hold wall-clock durations and stay out),
//     merged into the process registry after the payload is sealed.
//     Scheduler, corpus, and cache metrics land only in the process
//     registry, because they depend on what other requests did.
//   - The payload cache stores sealed canonical bytes and replays them
//     verbatim; requests are canonicalized (specs by parse round-trip)
//     before keying, so equivalent requests share an entry.
//
// The parallel-load differential test pins the contract end to end:
// a mixed workload at worker budget 8 is byte-identical to the same
// requests replayed sequentially, cold cache and warm.
package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"

	v1 "branchcorr/internal/api/v1"
	"branchcorr/internal/bp"
	"branchcorr/internal/core"
	"branchcorr/internal/corpus"
	"branchcorr/internal/obs"
	"branchcorr/internal/runner"
	"branchcorr/internal/sim"
	"branchcorr/internal/trace"
	"branchcorr/internal/workloads"
)

// Config parameterizes a Server. The zero value of every field selects
// a sensible default.
type Config struct {
	// CorpusDir is the content-addressed trace store directory
	// (required).
	CorpusDir string
	// Workers bounds how many requests compute simultaneously; further
	// requests queue (default 4). It is an admission budget — each
	// admitted request may itself use SimParallel engine workers.
	Workers int
	// SimParallel is the per-request engine worker budget handed to
	// sim.Options.Parallel / core's ScoreParallel (default 1). Results
	// are byte-identical at every setting; this only trades single-
	// request latency against cross-request fairness.
	SimParallel int
	// CacheEntries caps the payload cache (default 256 entries).
	CacheEntries int
	// TraceEntries caps the in-memory decoded-trace cache (default 8).
	TraceEntries int
	// DefaultTraceN is the generated-trace length when a workload ref
	// leaves N zero (default workloads.DefaultLength).
	DefaultTraceN int
	// MaxTraceN rejects workload refs longer than this with a too-large
	// error (default 8,000,000).
	MaxTraceN int
	// MaxUploadBytes bounds a trace upload body (default 64 MiB).
	MaxUploadBytes int64
	// Registry is the process registry receiving scheduler, corpus, and
	// merged per-request metrics; nil selects obs.Default().
	Registry *obs.Registry
}

func (c Config) withDefaults() Config {
	// Negative values clamp to the defaults too: a negative Workers
	// would panic in make(chan), and a negative cache capacity would
	// drive the eviction loop off the end of its order slice.
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.SimParallel <= 0 {
		c.SimParallel = 1
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.TraceEntries <= 0 {
		c.TraceEntries = 8
	}
	if c.DefaultTraceN <= 0 {
		c.DefaultTraceN = workloads.DefaultLength
	}
	if c.MaxTraceN <= 0 {
		c.MaxTraceN = 8_000_000
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = 64 << 20
	}
	return c
}

// Server is the bpsimd service: construct with New, mount Handler on an
// http.Server.
type Server struct {
	cfg    Config
	reg    *obs.Registry
	store  *corpus.Store
	cache  *payloadCache
	traces *traceCache

	sem     chan struct{} // admission slots, cap cfg.Workers
	waiting atomic.Int64
}

// New opens the corpus store and builds a server.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	reg := obs.Or(cfg.Registry)
	store, err := corpus.Open(cfg.CorpusDir, reg)
	if err != nil {
		return nil, err
	}
	return &Server{
		cfg:    cfg,
		reg:    reg,
		store:  store,
		cache:  newPayloadCache(cfg.CacheEntries, reg),
		traces: newTraceCache(cfg.TraceEntries),
		sem:    make(chan struct{}, cfg.Workers),
	}, nil
}

// Handler returns the service's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+v1.PathPrefix+"/traces", s.handleUpload)
	mux.HandleFunc("POST "+v1.PathPrefix+"/simulate", s.handleSimulate)
	mux.HandleFunc("POST "+v1.PathPrefix+"/sweep", s.handleSweep)
	mux.HandleFunc("POST "+v1.PathPrefix+"/oracle", s.handleOracle)
	mux.HandleFunc("POST "+v1.PathPrefix+"/classify", s.handleClassify)
	mux.HandleFunc("GET "+v1.PathPrefix+"/metrics", s.handleMetrics)
	mux.HandleFunc("GET "+v1.PathPrefix+"/healthz", s.handleHealthz)
	return mux
}

// reqError pairs an error with its wire code; writeError unwraps it.
type reqError struct {
	code string
	err  error
}

func (e *reqError) Error() string { return e.err.Error() }
func (e *reqError) Unwrap() error { return e.err }

func badRequest(err error) error  { return &reqError{code: "bad-request", err: err} }
func notFound(err error) error    { return &reqError{code: "not-found", err: err} }
func tooLarge(err error) error    { return &reqError{code: "too-large", err: err} }
func internalErr(err error) error { return &reqError{code: "internal", err: err} }

// canceledErr classifies a client that gave up (context canceled or
// deadline exceeded) as its own wire code, so aborted requests don't
// inflate the internal-error counter or read as server faults.
func canceledErr(err error) error { return &reqError{code: "canceled", err: err} }

// statusClientClosedRequest is nginx's convention for "the client went
// away before the response"; there is no standard-library constant.
const statusClientClosedRequest = 499

func httpStatus(code string) int {
	switch code {
	case "not-found":
		return http.StatusNotFound
	case "too-large":
		return http.StatusRequestEntityTooLarge
	case "canceled":
		return statusClientClosedRequest
	case "internal":
		return http.StatusInternalServerError
	default:
		// bad-request and the bp.ErrKind spec-error codes.
		return http.StatusBadRequest
	}
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	code := "internal"
	var re *reqError
	if errors.As(err, &re) {
		code = re.code
	}
	e := v1.ErrorFrom(code, err) // a bp.ParseError overrides code with its kind
	s.reg.Counter("service.errors." + e.Code).Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(httpStatus(e.Code))
	_ = v1.Encode(w, v1.ErrorResponse{Error: e})
}

func (s *Server) writePayload(w http.ResponseWriter, b []byte) {
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(b)
}

// decode strictly reads a bounded JSON request body.
func decode(w http.ResponseWriter, r *http.Request, v any) error {
	if err := v1.DecodeStrict(http.MaxBytesReader(w, r.Body, v1.MaxRequestBytes), v); err != nil {
		return badRequest(fmt.Errorf("request body: %w", err))
	}
	return nil
}

// admit blocks until a worker slot is free (or the request dies). The
// queue gauge records the high-water mark of waiting requests.
func (s *Server) admit(ctx context.Context) (release func(), err error) {
	s.reg.Gauge("service.queue").Max(s.waiting.Add(1))
	defer s.waiting.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, nil
	case <-ctx.Done():
		return nil, canceledErr(ctx.Err())
	}
}

// compute produces the canonical payload bytes for one cache key:
// single-flight through the payload cache, admission under the worker
// budget, the build run as a runner cell (canonical error identity,
// cell accounting in the process registry), and the request's private
// metrics merged into the process registry only after the payload is
// sealed — a cache hit replays bytes and merges nothing.
func (s *Server) compute(ctx context.Context, endpoint string, rt resolvedTrace, key string,
	build func(reg *obs.Registry) (any, error)) ([]byte, error) {
	// The flight is shared by every request coalesced on this key, so it
	// must outlive any one of them: detached from the first caller's
	// cancellation, a client that disconnects while its flight is queued
	// or mid-compute doesn't poison the waiters with its abort.
	ctx = context.WithoutCancel(ctx)
	return s.cache.do(key, func() ([]byte, error) {
		release, err := s.admit(ctx)
		if err != nil {
			return nil, err
		}
		defer release()
		reqReg := obs.New()
		var payload any
		var buildErr error
		cell := runner.Cell{Exhibit: endpoint, Workload: rt.tr.Name(), Run: func(context.Context) (err error) {
			defer func() {
				// A panicking engine must not take the process down; it
				// surfaces as an internal error on this request only.
				if r := recover(); r != nil {
					err = internalErr(fmt.Errorf("%s: panic: %v", endpoint, r))
					buildErr = err
				}
			}()
			payload, buildErr = build(reqReg)
			return buildErr
		}}
		if rerr := runner.Run(ctx, []runner.Cell{cell}, runner.Options{
			Parallel: 1,
			Observer: runner.RegistryObserver(s.reg),
		}); rerr != nil {
			// Prefer the build's own error: the runner wraps it with the
			// cell identity, which would bury the wire code mapping...
			// except reqError and ParseError unwrap through the wrapping,
			// so either works; the bare error just reads better.
			if buildErr != nil {
				return nil, buildErr
			}
			return nil, rerr
		}
		b, err := v1.Marshal(payload)
		if err != nil {
			return nil, internalErr(err)
		}
		s.reg.Merge(reqReg.Snapshot())
		return b, nil
	})
}

// schedulingMetric reports whether a metric records scheduler shape —
// how the engine split the work — rather than the work itself. The
// engines keep those deliberately (a sharded sweep counts its shards),
// but they vary with the server's SimParallel setting, so they stay out
// of payloads and live only in the process registry.
func schedulingMetric(name string) bool {
	return name == "sim.sweep.runs.sharded" ||
		strings.HasPrefix(name, "sim.sweep.shards") ||
		strings.HasPrefix(name, "runner.")
}

// requestMetrics seals a request registry into the payload's Metrics
// field: counters and gauges only (histograms hold durations), minus
// scheduling-shape metrics — what remains is a deterministic function
// of (trace, request).
func requestMetrics(reg *obs.Registry) obs.Snapshot {
	s := reg.Snapshot().WithoutHistograms()
	for name := range s.Counters {
		if schedulingMetric(name) {
			delete(s.Counters, name)
		}
	}
	for name := range s.Gauges {
		if schedulingMetric(name) {
			delete(s.Gauges, name)
		}
	}
	return s
}

// canonicalSpecs parses every spec and returns the canonical name list
// (bp.Predictor.Name(), the grammar's round-trip form), so equivalent
// spellings key one cache entry. Specs needing profiling context are
// parsed against the resolved trace; the trace summary is computed only
// if some spec actually needs it.
func canonicalSpecs(specs []string, tr *trace.Trace) ([]bp.Predictor, []string, error) {
	if len(specs) == 0 {
		return nil, nil, badRequest(errors.New("specs: at least one predictor spec is required"))
	}
	if len(specs) > 64 {
		return nil, nil, badRequest(fmt.Errorf("specs: %d exceeds the per-request limit 64", len(specs)))
	}
	preds := make([]bp.Predictor, len(specs))
	names := make([]string, len(specs))
	var env *bp.Env
	for i, spec := range specs {
		p, err := bp.Parse(spec, bp.Env{})
		var pe *bp.ParseError
		if errors.As(err, &pe) && pe.Kind == bp.ErrMissingContext {
			if env == nil {
				env = &bp.Env{Stats: trace.Summarize(tr), Trace: tr}
			}
			p, err = bp.Parse(spec, *env)
		}
		if err != nil {
			return nil, nil, err
		}
		preds[i] = p
		names[i] = p.Name()
	}
	return preds, names, nil
}

func (s *Server) countRequest(endpoint string) {
	s.reg.Counter("service.requests." + endpoint).Inc()
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	s.countRequest("simulate")
	var req v1.SimulateRequest
	if err := decode(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if req.BucketSize < 0 {
		s.writeError(w, badRequest(errors.New("bucket_size must be non-negative")))
		return
	}
	rt, err := s.resolve(req.Trace)
	if err != nil {
		s.writeError(w, err)
		return
	}
	preds, names, err := canonicalSpecs(req.Specs, rt.tr)
	if err != nil {
		s.writeError(w, err)
		return
	}
	key := fmt.Sprintf("simulate|%s|bucket=%d|perbranch=%t|%s",
		rt.key, req.BucketSize, req.PerBranch, strings.Join(names, "\x00"))
	b, err := s.compute(r.Context(), "simulate", rt, key, func(reg *obs.Registry) (any, error) {
		out := sim.Simulate(rt.tr, preds, sim.Options{
			Parallel:   s.cfg.SimParallel,
			BucketSize: req.BucketSize,
			Observer:   reg,
		})
		resp := v1.SimulateResponse{Trace: rt.info()}
		for i, res := range out.Results {
			var tl *sim.Timeline
			if out.Timelines != nil {
				tl = out.Timelines[i]
			}
			resp.Results = append(resp.Results, v1.NewPredictorResult(res, tl, req.PerBranch))
		}
		resp.Metrics = requestMetrics(reg)
		return resp, nil
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writePayload(w, b)
}

// buildGrid turns a wire grid spec into a sweep grid. Constructor
// geometry guards panic on out-of-range parameters before allocating;
// like bp.Parse, a wire spec is user input, so those panics surface as
// bad-param errors.
func buildGrid(g v1.GridSpec, tr *trace.Trace) (grid bp.SweepGrid, err error) {
	defer func() {
		if r := recover(); r != nil {
			grid, err = nil, &bp.ParseError{Spec: g.Family, Token: g.Family, Kind: bp.ErrBadParam, Reason: fmt.Sprint(r)}
		}
	}()
	axis := func(name string, vals []uint) ([]uint, error) {
		if len(vals) == 0 {
			return nil, badRequest(fmt.Errorf("grid: family %q needs a non-empty %s axis", g.Family, name))
		}
		if len(vals) > 64 {
			return nil, badRequest(fmt.Errorf("grid: %s axis length %d exceeds the limit 64", name, len(vals)))
		}
		return vals, nil
	}
	switch g.Family {
	case "gshare-hist":
		hist, err := axis("hist", g.Hist)
		if err != nil {
			return nil, err
		}
		return bp.NewGshareSweep(hist), nil
	case "bimodal-size":
		table, err := axis("table", g.Table)
		if err != nil {
			return nil, err
		}
		return bp.NewBimodalSweep(table), nil
	case "if-gshare":
		hist, err := axis("hist", g.Hist)
		if err != nil {
			return nil, err
		}
		return bp.NewIFGshareSweep(hist), nil
	case "if-pas":
		hist, err := axis("hist", g.Hist)
		if err != nil {
			return nil, err
		}
		return bp.NewIFPAsSweep(hist), nil
	case "hybrid":
		hist, err := axis("hist", g.Hist)
		if err != nil {
			return nil, err
		}
		bimodal, chooser := g.BimodalBits, g.ChooserBits
		if bimodal == 0 {
			bimodal = 12
		}
		if chooser == 0 {
			chooser = 12
		}
		return bp.NewHybridSweep(hist, bimodal, chooser), nil
	case "specs":
		preds, names, err := canonicalSpecs(g.Specs, tr)
		if err != nil {
			return nil, err
		}
		return bp.NewPredictorGrid("specs("+strings.Join(names, ",")+")", preds), nil
	default:
		return nil, badRequest(fmt.Errorf("grid: unknown family %q", g.Family))
	}
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.countRequest("sweep")
	var req v1.SweepRequest
	if err := decode(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	rt, err := s.resolve(req.Trace)
	if err != nil {
		s.writeError(w, err)
		return
	}
	grid, err := buildGrid(req.Grid, rt.tr)
	if err != nil {
		s.writeError(w, err)
		return
	}
	// The grid's own canonical identity — name plus per-config labels —
	// keys the cache, so equivalent wire spellings share an entry.
	key := fmt.Sprintf("sweep|%s|%s|%s", rt.key, grid.GridName(), strings.Join(grid.ConfigNames(), "\x00"))
	b, err := s.compute(r.Context(), "sweep", rt, key, func(reg *obs.Registry) (any, error) {
		out := sim.SimulateSweep(rt.tr, grid, sim.Options{Parallel: s.cfg.SimParallel, Observer: reg})
		return v1.SweepResponse{
			Trace:   rt.info(),
			Grid:    out.Grid,
			Total:   int64(out.Total),
			Configs: v1.NewSweepConfigs(out),
			Metrics: requestMetrics(reg),
		}, nil
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writePayload(w, b)
}

// oracleParams canonicalizes an oracle request: defaults applied,
// schemes parsed, stage resolved. The canonical form is the cache key,
// so e.g. an explicit window_len 16 and the default share an entry.
func oracleParams(req v1.OracleRequest) (core.OracleOptions, string, error) {
	cfg := core.OracleConfig{
		WindowLen:     req.WindowLen,
		TopK:          req.TopK,
		MaxCandidates: req.MaxCandidates,
	}
	switch {
	case cfg.WindowLen < 0 || cfg.WindowLen > 64:
		return core.OracleOptions{}, "", badRequest(fmt.Errorf("window_len %d outside [0, 64]", cfg.WindowLen))
	case cfg.TopK < 0 || cfg.TopK > 32:
		return core.OracleOptions{}, "", badRequest(fmt.Errorf("top_k %d outside [0, 32]", cfg.TopK))
	case cfg.MaxCandidates < 0 || cfg.MaxCandidates > 1<<20:
		return core.OracleOptions{}, "", badRequest(fmt.Errorf("max_candidates %d outside [0, %d]", cfg.MaxCandidates, 1<<20))
	}
	if cfg.WindowLen == 0 {
		cfg.WindowLen = 16
	}
	if cfg.TopK == 0 {
		cfg.TopK = 16
	}
	if cfg.MaxCandidates == 0 {
		cfg.MaxCandidates = 2048
	}
	// Scheme membership is order-insensitive; sort-deduplicate so any
	// spelling of "both" keys like the default.
	seen := map[string]core.Scheme{"occ": core.Occurrence, "back": core.BackwardCount}
	var schemes []string
	for _, name := range req.Schemes {
		if _, ok := seen[name]; !ok {
			return core.OracleOptions{}, "", badRequest(fmt.Errorf("schemes: unknown scheme %q (want occ or back)", name))
		}
		schemes = append(schemes, name)
	}
	sort.Strings(schemes)
	schemes = slicesCompact(schemes)
	if len(schemes) == 2 {
		schemes = nil // both schemes is the default
	}
	for _, name := range schemes {
		cfg.Schemes = append(cfg.Schemes, seen[name])
	}

	opts := core.OracleOptions{OracleConfig: cfg}
	switch req.Stage {
	case "", "full":
		opts.Stage = core.StageFull
	case "profile":
		opts.Stage = core.StageProfile
	default:
		return core.OracleOptions{}, "", badRequest(fmt.Errorf("stage: %q (want full or profile)", req.Stage))
	}
	canon := fmt.Sprintf("stage=%s|window=%d|topk=%d|maxcand=%d|schemes=%s",
		opts.Stage, cfg.WindowLen, cfg.TopK, cfg.MaxCandidates, strings.Join(schemes, ","))
	return opts, canon, nil
}

// slicesCompact removes adjacent duplicates from a sorted slice.
func slicesCompact(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func (s *Server) handleOracle(w http.ResponseWriter, r *http.Request) {
	s.countRequest("oracle")
	var req v1.OracleRequest
	if err := decode(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	rt, err := s.resolve(req.Trace)
	if err != nil {
		s.writeError(w, err)
		return
	}
	opts, canon, err := oracleParams(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	key := fmt.Sprintf("oracle|%s|%s", rt.key, canon)
	b, err := s.compute(r.Context(), "oracle", rt, key, func(reg *obs.Registry) (any, error) {
		opts := opts
		opts.Obs = reg
		opts.ScoreParallel = s.cfg.SimParallel
		sel := core.Oracle(rt.tr, opts)
		resp := v1.OracleResponse{Trace: rt.info()}
		switch opts.Stage {
		case core.StageProfile:
			resp.Candidates = v1.NewOracleCandidates(sel.Candidates)
		default:
			resp.Sizes = v1.NewOracleAssignments(sel)
		}
		resp.Metrics = requestMetrics(reg)
		return resp, nil
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writePayload(w, b)
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	s.countRequest("classify")
	var req v1.ClassifyRequest
	if err := decode(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if req.IFPAsHistoryBits > 28 {
		s.writeError(w, badRequest(fmt.Errorf("if_pas_history_bits %d exceeds the limit 28", req.IFPAsHistoryBits)))
		return
	}
	if req.HighBias < 0 || req.HighBias >= 1 {
		s.writeError(w, badRequest(fmt.Errorf("high_bias %g outside [0, 1)", req.HighBias)))
		return
	}
	rt, err := s.resolve(req.Trace)
	if err != nil {
		s.writeError(w, err)
		return
	}
	cfg := core.ClassifyConfig{IFPAsHistoryBits: req.IFPAsHistoryBits, HighBias: req.HighBias}
	if cfg.IFPAsHistoryBits == 0 {
		cfg.IFPAsHistoryBits = 16
	}
	if cfg.HighBias == 0 {
		cfg.HighBias = 0.99
	}
	key := fmt.Sprintf("classify|%s|bits=%d|bias=%g", rt.key, cfg.IFPAsHistoryBits, cfg.HighBias)
	b, err := s.compute(r.Context(), "classify", rt, key, func(reg *obs.Registry) (any, error) {
		cfg := cfg
		cfg.Obs = reg
		p := core.ClassifyPerAddress(rt.tr, cfg)
		return v1.ClassifyResponse{
			Trace:              rt.info(),
			Classes:            v1.NewClassShares(p),
			StaticHighBiasFrac: p.StaticHighBiasFrac(),
			Metrics:            requestMetrics(reg),
		}, nil
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writePayload(w, b)
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	s.countRequest("upload")
	body, err := readBounded(r, s.cfg.MaxUploadBytes)
	if err != nil {
		s.writeError(w, err)
		return
	}
	pt, key, err := decodeUpload(body)
	if err != nil {
		s.writeError(w, err)
		return
	}
	// Content addressing makes uploads idempotent: a known key skips the
	// write, and the response is identical either way (no dedupe flag —
	// it would leak store state into payload bytes).
	if !s.store.Has(key) {
		if err := s.store.PutPacked(key, pt); err != nil {
			s.writeError(w, internalErr(err))
			return
		}
	}
	s.reg.Counter("service.uploads").Inc()
	b, err := v1.Marshal(v1.UploadResponse{Key: key, Branches: pt.Len(), Sites: pt.NumBranches()})
	if err != nil {
		s.writeError(w, internalErr(err))
		return
	}
	s.writePayload(w, b)
}

// readBounded reads a request body up to limit bytes, failing as
// too-large one byte past it.
func readBounded(r *http.Request, limit int64) ([]byte, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		return nil, badRequest(err)
	}
	if int64(len(body)) > limit {
		return nil, tooLarge(fmt.Errorf("upload body exceeds %d bytes", limit))
	}
	return body, nil
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = s.reg.WriteJSON(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ok\n"))
}
